package snapshot

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/wscale"
)

// buildOracle constructs a small decomposed-or-direct oracle exchange
// object the way the facade would.
func buildOracle(g *graph.Graph, eps float64, seed uint64) (*Oracle, *graph.Graph) {
	o := &Oracle{Eps: eps, Seed: seed}
	if g.NumVertices() < 2 || g.NumEdges() == 0 {
		o.Degenerate = true
		return o, g
	}
	wp := hopset.DefaultWeightedParams(seed)
	wp.Zeta = eps
	n := float64(g.NumVertices())
	if g.WeightRatio() <= (n/eps)*(n/eps)*(n/eps) {
		o.Direct = hopset.BuildScaled(g, wp, nil)
		return o, g
	}
	o.Dec = wscale.Build(g, eps, nil)
	for i, inst := range o.Dec.Instances {
		p := wp
		p.Seed = wp.Seed + uint64(i)*0x9e3779b97f4a7c15
		o.Instances = append(o.Instances, hopset.BuildScaled(inst.G, p, nil))
	}
	return o, g
}

func mustWrite(t *testing.T, g *graph.Graph, o *Oracle, note []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteOracle(&buf, g, o, note); err != nil {
		t.Fatalf("WriteOracle: %v", err)
	}
	return buf.Bytes()
}

func testGraph() *graph.Graph {
	return graph.UniformWeights(graph.Grid2D(7, 8), 15, 3)
}

func TestOracleRoundTripDirect(t *testing.T) {
	g := testGraph()
	o, _ := buildOracle(g, 0.3, 11)
	if o.Direct == nil {
		t.Fatal("expected a direct oracle")
	}
	raw := mustWrite(t, g, o, []byte("hello"))
	back, eg, note, err := ReadOracle(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadOracle: %v", err)
	}
	if string(note) != "hello" {
		t.Fatalf("note = %q", note)
	}
	if eg.Fingerprint() != g.Fingerprint() {
		t.Fatal("embedded graph fingerprint mismatch")
	}
	if back.Direct == nil || back.Dec != nil || back.Degenerate {
		t.Fatal("restored oracle has the wrong shape")
	}
	if got, want := back.Direct.Size(), o.Direct.Size(); got != want {
		t.Fatalf("restored hopset size %d, want %d", got, want)
	}
	if got, want := len(back.Direct.Scales), len(o.Direct.Scales); got != want {
		t.Fatalf("restored %d scales, want %d", got, want)
	}
	for i := range o.Direct.Scales {
		a, b := o.Direct.Scales[i], back.Direct.Scales[i]
		if a.D != b.D || a.WHat != b.WHat || len(a.Res.Edges) != len(b.Res.Edges) {
			t.Fatalf("scale %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	// Shared-result dedup must survive: bands that reused one hopset
	// still point at one object.
	shared := map[*hopset.Result]bool{}
	for i := range o.Direct.Scales {
		shared[o.Direct.Scales[i].Res] = true
	}
	restored := map[*hopset.Result]bool{}
	for i := range back.Direct.Scales {
		restored[back.Direct.Scales[i].Res] = true
	}
	if len(restored) != len(shared) {
		t.Fatalf("result sharing changed: %d unique originally, %d restored", len(shared), len(restored))
	}
}

func TestOracleRoundTripDecomposed(t *testing.T) {
	g := graph.ExponentialWeights(graph.RandomConnectedGNM(90, 360, 5), 10, 28, 6)
	o, _ := buildOracle(g, 0.25, 7)
	if o.Dec == nil {
		t.Fatal("expected a decomposed oracle")
	}
	raw := mustWrite(t, g, o, nil)
	back, _, note, err := ReadOracle(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadOracle: %v", err)
	}
	if note != nil {
		t.Fatalf("unexpected note %q", note)
	}
	if back.Dec == nil || len(back.Instances) != len(o.Instances) {
		t.Fatalf("restored decomposition shape wrong: %d instances, want %d",
			len(back.Instances), len(o.Instances))
	}
	if len(back.Dec.Cats) != len(o.Dec.Cats) {
		t.Fatalf("restored %d category levels, want %d", len(back.Dec.Cats), len(o.Dec.Cats))
	}
	for j := range o.Dec.Levels {
		if back.Dec.LevelCounts[j] != o.Dec.LevelCounts[j] {
			t.Fatalf("level %d count mismatch", j)
		}
		for v := range o.Dec.Levels[j] {
			if back.Dec.Levels[j][v] != o.Dec.Levels[j][v] {
				t.Fatalf("level %d label %d mismatch", j, v)
			}
		}
		inst, binst := o.Dec.Instances[j], back.Dec.Instances[j]
		if inst.G.NumVertices() != binst.G.NumVertices() || inst.G.NumEdges() != binst.G.NumEdges() {
			t.Fatalf("instance %d graph shape mismatch", j)
		}
		if inst.G.HasOrigEdgeIDs() != binst.G.HasOrigEdgeIDs() {
			t.Fatalf("instance %d lost its contraction back-mapping", j)
		}
		for e := int32(0); int64(e) < inst.G.NumEdges(); e++ {
			if inst.G.OrigEdgeID(e) != binst.G.OrigEdgeID(e) {
				t.Fatalf("instance %d orig edge id %d mismatch", j, e)
			}
		}
	}
	// Instance hopsets must be bound to the restored instance graphs.
	for j, s := range back.Instances {
		if s.Base != back.Dec.Instances[j].G {
			t.Fatalf("instance %d hopset bound to the wrong graph", j)
		}
	}
	// Label-slice sharing must survive: where the built decomposition
	// aliases a level labeling for an instance, the restored one must
	// alias too (the snapshot stores a reference, not a second copy).
	for j, inst := range o.Dec.Instances {
		if len(inst.Label) == 0 {
			continue
		}
		for jj := range o.Dec.Levels {
			if len(o.Dec.Levels[jj]) > 0 && &o.Dec.Levels[jj][0] == &inst.Label[0] {
				if &back.Dec.Levels[jj][0] != &back.Dec.Instances[j].Label[0] {
					t.Fatalf("instance %d label sharing with level %d not restored", j, jj)
				}
			}
		}
	}
}

func TestOracleRejectsPartial(t *testing.T) {
	g := graph.ExponentialWeights(graph.RandomConnectedGNM(60, 240, 9), 10, 28, 10)
	o, _ := buildOracle(g, 0.25, 3)
	if o.Dec == nil {
		t.Skip("graph did not decompose")
	}
	o.Instances[0] = nil // simulate a canceled build
	var buf bytes.Buffer
	if err := WriteOracle(&buf, g, o, nil); err == nil {
		t.Fatal("WriteOracle accepted a partial oracle")
	}
}

func TestScaledRoundTrip(t *testing.T) {
	g := testGraph()
	s := hopset.BuildScaled(g, hopset.DefaultWeightedParams(5), nil)
	var buf bytes.Buffer
	if err := WriteScaled(&buf, s, []byte("n")); err != nil {
		t.Fatalf("WriteScaled: %v", err)
	}
	back, note, err := ReadScaled(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadScaled: %v", err)
	}
	if string(note) != "n" || back.Size() != s.Size() || len(back.Scales) != len(s.Scales) {
		t.Fatalf("scaled round trip mismatch: size %d vs %d", back.Size(), s.Size())
	}
	// The restored hopset must be queryable (cold caches repopulate).
	q1 := s.Query(0, g.NumVertices()-1, nil)
	q2 := back.Query(0, g.NumVertices()-1, nil)
	if q1.Dist != q2.Dist || q1.Levels != q2.Levels || q1.Fallback != q2.Fallback {
		t.Fatalf("restored query %+v != original %+v", q2, q1)
	}
}

func TestSpannerRoundTrip(t *testing.T) {
	g := testGraph()
	ids := []int32{0, 3, 4, 9, 17}
	var buf bytes.Buffer
	if err := WriteSpanner(&buf, g, 3, 77, ids, nil); err != nil {
		t.Fatalf("WriteSpanner: %v", err)
	}
	k, seed, back, _, err := ReadSpanner(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatalf("ReadSpanner: %v", err)
	}
	if k != 3 || seed != 77 || len(back) != len(ids) {
		t.Fatalf("spanner round trip: k=%d seed=%d ids=%v", k, seed, back)
	}
	for i := range ids {
		if back[i] != ids[i] {
			t.Fatalf("id %d: %d != %d", i, back[i], ids[i])
		}
	}
	// A different graph must be rejected by fingerprint.
	other := graph.UniformWeights(graph.Grid2D(7, 8), 15, 4)
	if _, _, _, _, err := ReadSpanner(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("ReadSpanner accepted a mismatched graph")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	g := testGraph()
	o, _ := buildOracle(g, 0.3, 11)
	raw := mustWrite(t, g, o, []byte("note"))

	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[0] ^= 0xFF
		if _, _, _, err := ReadOracle(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[4] = 99
		if _, _, _, err := ReadOracle(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, _, _, err := ReadOracle(bytes.NewReader(nil)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		// Every proper prefix must error, never hang or panic.
		for _, cut := range []int{7, 12, 20, len(raw) / 4, len(raw) / 2, len(raw) - 1} {
			if cut >= len(raw) {
				continue
			}
			if _, _, _, err := ReadOracle(bytes.NewReader(raw[:cut])); err == nil {
				t.Fatalf("prefix of %d bytes decoded cleanly", cut)
			}
		}
	})
	t.Run("flipped-payload-byte", func(t *testing.T) {
		// Flip bytes across the stream: every flip must be caught (by
		// CRC, validation, or framing) or — if it lands in a section's
		// own CRC trailer — reported as a mismatch.
		for _, pos := range []int{30, 60, len(raw) / 3, len(raw) / 2, 2 * len(raw) / 3, len(raw) - 5} {
			bad := append([]byte(nil), raw...)
			bad[pos] ^= 0x01
			if _, _, _, err := ReadOracle(bytes.NewReader(bad)); err == nil {
				t.Fatalf("flip at %d decoded cleanly", pos)
			}
		}
	})
}
