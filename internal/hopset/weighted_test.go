package hopset

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sssp"
)

func TestRoundGraph(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{
		{U: 0, V: 1, W: 10}, {U: 1, V: 2, W: 15}, {U: 0, V: 2, W: 1},
	}, true)
	r := roundGraph(g, 4)
	// ceil(10/4)=3, ceil(15/4)=4, ceil(1/4)=1.
	want := []graph.W{3, 4, 1}
	for i, e := range r.Edges() {
		if e.W != want[i] {
			t.Fatalf("rounded edge %d weight %d, want %d", i, e.W, want[i])
		}
	}
	// Same topology, same order.
	for i := range g.Edges() {
		if g.Edges()[i].U != r.Edges()[i].U || g.Edges()[i].V != r.Edges()[i].V {
			t.Fatal("rounding permuted edges")
		}
	}
	// wHat <= 1 returns the same weighted graph.
	if roundGraph(g, 1) != g {
		t.Fatal("wHat=1 should return the input weighted graph unchanged")
	}
	// Unweighted promotion yields explicit unit weights.
	u := graph.Path(4)
	p := roundGraph(u, 1)
	if !p.Weighted() || p.EdgeWeight(0) != 1 {
		t.Fatal("unweighted promotion broken")
	}
}

func TestRoundingNeverUndershoots(t *testing.T) {
	// qHat·roundedDist >= trueDist for all vertices: rounding up can
	// only overestimate (the soundness direction of Lemma 5.2).
	g := graph.UniformWeights(graph.RandomConnectedGNM(120, 400, 3), 50, 4)
	for _, wHat := range []graph.W{2, 7, 31} {
		r := roundGraph(g, wHat)
		exact := sssp.Dijkstra(g, []graph.V{0}, sssp.Options{})
		rounded := sssp.Dijkstra(r, []graph.V{0}, sssp.Options{})
		for v := range exact.Dist {
			if exact.Dist[v] == graph.InfDist {
				continue
			}
			if graph.Dist(wHat)*rounded.Dist[v] < exact.Dist[v] {
				t.Fatalf("wHat=%d vertex %d: scaled rounded %d < exact %d",
					wHat, v, graph.Dist(wHat)*rounded.Dist[v], exact.Dist[v])
			}
		}
	}
}

func TestBuildScaledBandStructure(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(300, 900, 5), 200, 6)
	s := BuildScaled(g, DefaultWeightedParams(7), nil)
	if len(s.Scales) == 0 {
		t.Fatal("no bands")
	}
	// Bands are ascending and cover the distance range.
	n := float64(g.NumVertices())
	maxDist := n * float64(g.MaxWeight())
	for i := 1; i < len(s.Scales); i++ {
		if s.Scales[i].D <= s.Scales[i-1].D {
			t.Fatal("bands not ascending")
		}
	}
	top := s.Scales[len(s.Scales)-1].D
	if top < maxDist {
		t.Fatalf("top band %.0f below max distance %.0f", top, maxDist)
	}
	// Rounding granularity is monotone in the band.
	for i := 1; i < len(s.Scales); i++ {
		if s.Scales[i].WHat < s.Scales[i-1].WHat {
			t.Fatal("wHat not monotone across bands")
		}
	}
}

func TestBuildScaledSkipsSubMinimumBands(t *testing.T) {
	// All weights ≥ 10^6: bands below the minimum weight are useless
	// and must be skipped, keeping the band count O(1/eta).
	edges := []graph.Edge{}
	g0 := graph.Path(60)
	for _, e := range g0.Edges() {
		edges = append(edges, graph.Edge{U: e.U, V: e.V, W: 1_000_000 + int64(e.U)})
	}
	g := graph.FromEdges(60, edges, true)
	s := BuildScaled(g, DefaultWeightedParams(8), nil)
	if len(s.Scales) == 0 {
		t.Fatal("no bands")
	}
	if s.Scales[0].D < 500_000 {
		t.Fatalf("first band %.0f wastes levels below min weight 10^6", s.Scales[0].D)
	}
	// The whole pipeline still answers correctly on the huge weights.
	q := s.Query(0, 59, nil)
	exact := s.ExactDistance(0, 59)
	if q.Dist < exact || float64(q.Dist) > 1.6*float64(exact) {
		t.Fatalf("huge-weight query %d vs exact %d", q.Dist, exact)
	}
}

func TestBuildScaledBandEdgeFiltering(t *testing.T) {
	// A graph with one enormous edge: small bands must not race it
	// (their hopsets are built on the filtered subgraph), yet the
	// metric stays intact because hopset edges are true paths.
	base := graph.Path(50)
	edges := make([]graph.Edge, 0, 50)
	for _, e := range base.Edges() {
		edges = append(edges, graph.Edge{U: e.U, V: e.V, W: 2})
	}
	edges = append(edges, graph.Edge{U: 0, V: 49, W: 1 << 40})
	g := graph.FromEdges(50, edges, true)
	s := BuildScaled(g, DefaultWeightedParams(9), nil)
	for _, e := range s.Edges() {
		d := sssp.Dijkstra(g, []graph.V{e.U}, sssp.Options{}).Dist[e.V]
		if e.W < d {
			t.Fatalf("hopset edge below metric: (%d,%d) w=%d dist=%d", e.U, e.V, e.W, d)
		}
	}
	q := s.Query(0, 49, nil)
	if q.Dist < 98 || q.Dist > 160 {
		t.Fatalf("query = %d, want ~98 (path), not the 2^40 edge", q.Dist)
	}
}

func TestScaledAugmentedIdempotent(t *testing.T) {
	g := graph.UniformWeights(graph.Cycle(30), 9, 10)
	s := BuildScaled(g, DefaultWeightedParams(11), nil)
	a := s.Augmented()
	b := s.Augmented()
	if a != b {
		t.Fatal("Augmented not cached")
	}
	if a.NumEdges() != g.NumEdges()+int64(s.Size()) {
		t.Fatalf("augmented edges %d, want %d + %d", a.NumEdges(), g.NumEdges(), s.Size())
	}
}

func TestWeightedParamsValidation(t *testing.T) {
	for _, bad := range []WeightedParams{
		{Params: DefaultParams(1), Eta: 0, Zeta: 0.2},
		{Params: DefaultParams(1), Eta: 1.5, Zeta: 0.2},
		{Params: DefaultParams(1), Eta: 0.2, Zeta: 0},
		{Params: DefaultParams(1), Eta: 0.2, Zeta: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("params %+v did not panic", bad)
				}
			}()
			bad.normalized()
		}()
	}
	// Defaults fill in.
	wp := WeightedParams{Params: DefaultParams(1), Eta: 0.2, Zeta: 0.2}
	wp = wp.normalized()
	if wp.Escalation != 8 || wp.InitialHopBudget != 16 {
		t.Fatalf("defaults not applied: %+v", wp)
	}
}

// TestRoundedCacheBounded pins the rounded-augmented cache's memory
// contract: however many distinct query granularities a workload
// touches, at most roundedAugCap rounded graphs are resident, eviction
// is least-recently-used, and a re-requested evicted granularity
// rebuilds the identical graph (the bound changes memory, not answers).
func TestRoundedCacheBounded(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(80, 240, 11), 1000, 12)
	s := BuildScaled(g, DefaultWeightedParams(13), nil)
	first := s.roundedAugmented(2)
	for q := graph.W(2); q < graph.W(2+4*roundedAugCap); q++ {
		s.roundedAugmented(q)
		if n := s.RoundedCacheLen(); n > roundedAugCap {
			t.Fatalf("cache holds %d rounded graphs after granularity %d, cap %d", n, q, roundedAugCap)
		}
	}
	if n := s.RoundedCacheLen(); n != roundedAugCap {
		t.Fatalf("cache holds %d rounded graphs, want full cap %d", n, roundedAugCap)
	}
	// Granularity 2 was evicted long ago; asking again rebuilds an
	// equal (but distinct) graph.
	rebuilt := s.roundedAugmented(2)
	if rebuilt == first {
		t.Fatalf("granularity 2 survived %d inserts past the cap", 4*roundedAugCap)
	}
	if rebuilt.NumVertices() != first.NumVertices() ||
		!reflect.DeepEqual(first.Edges(), rebuilt.Edges()) {
		t.Fatalf("rebuilt rounded graph differs from the evicted one")
	}
	// Touching the oldest resident granularity must protect it from the
	// next eviction (recency, not insertion order).
	oldest := s.roundedOrder[0]
	s.roundedAugmented(oldest)
	s.roundedAugmented(graph.W(1 << 20)) // forces one eviction
	if _, ok := s.roundedAug[oldest]; !ok {
		t.Fatalf("recently used granularity %d evicted", oldest)
	}
}

func TestQueryEscalationEngagesOnLongPaths(t *testing.T) {
	// On a long weighted path the shortcut paths exceed the initial
	// budget only when the band structure is coarse; verify both the
	// default and a no-adaptivity configuration answer soundly.
	g := graph.UniformWeights(graph.Path(800), 50, 12)
	for _, initial := range []float64{16, 1e9} {
		wp := DefaultWeightedParams(13)
		wp.InitialHopBudget = initial
		s := BuildScaled(g, wp, nil)
		exact := s.ExactDistance(0, 799)
		q := s.Query(0, 799, nil)
		if q.Dist < exact || float64(q.Dist) > 1.6*float64(exact) {
			t.Fatalf("initial=%g: query %d vs exact %d", initial, q.Dist, exact)
		}
	}
}

func TestLimitedRoundsAccumulate(t *testing.T) {
	g := graph.UniformWeights(graph.Grid2D(12, 12), 6, 14)
	res := Limited(g, 0.8, 0.4, 15, nil)
	if res.Levels < 1 {
		t.Fatalf("no rounds recorded: %+v", res.Levels)
	}
	if res.Size() == 0 {
		t.Fatal("no edges")
	}
}

func TestExpectedHopsFormula(t *testing.T) {
	p := DefaultParams(1)
	n := 10000
	// h = n^{1/δ}·nf^{1−1/δ}·β0·d exactly.
	d := 500.0
	nf := float64(p.NFinal(n))
	want := math.Pow(float64(n), 1/p.Delta) * math.Pow(nf, 1-1/p.Delta) *
		p.Beta0(n) * d
	if got := p.ExpectedHops(n, d); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("ExpectedHops = %v, want %v", got, want)
	}
}
