package hopset

import (
	"math"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/sssp"
)

// QueryResult reports an approximate s-t distance query answered
// through the hopset (the Klein–Subramanian query stage the paper
// composes with in Theorems 1.2 / 5.3).
type QueryResult struct {
	// Dist is the returned estimate; always ≥ the true distance
	// (rounding only rounds up, and hopset edges are real paths), and
	// ≤ (1+ζ)·(1+construction distortion)·true once the sweep hits
	// the right band.
	Dist graph.Dist
	// Scale is the index of the band that answered, or -1 when the
	// exact fallback answered.
	Scale int
	// Fallback reports whether the deterministic Dijkstra fallback
	// was used (level budgets exhausted on every band).
	Fallback bool
	// Levels is the total number of synchronous search levels
	// consumed across all attempted searches — the query depth.
	Levels int64
	// Work is the total relaxation work across attempted searches.
	Work int64
}

// Query answers an approximate s-t distance query following Section 5.
// The O(1/η) distance-band estimates race in parallel, exactly as the
// paper runs them ("we can just try ... O(3/η) estimates, incurring a
// factor of O(3/η) in the work"): in every round, each band rounds the
// augmented graph to multiples of ŵ = ζ·d/h (Lemma 5.2, with d the
// band floor so the additive error ζ·d ≤ ζ·dist) and runs a
// level-capped weighted parallel BFS; the round's depth is the maximum
// over bands, its work the sum.
//
// The hop budget h escalates geometrically across rounds up to the
// Lemma 4.2 bound: the bound is a with-high-probability worst case,
// while the realized shortcut path is usually much shorter, and a
// too-large budget would round too finely and waste depth. Escalation
// costs a constant factor in depth (geometric sum) and keeps the
// per-round level caps at O(n^η · h / ζ) — the Lemma 5.2 level count.
//
// If every band exhausts its budget — a probabilistic event — Query
// falls back to an exact Dijkstra on the augmented graph, so the
// answer is always finite iff s and t are connected.
func (s *Scaled) Query(src, dst graph.V, cost *par.Cost) QueryResult {
	return s.QueryOn(nil, src, dst, cost)
}

// QueryOn is Query on an execution context: every band search draws
// its result arrays from ec's arenas and releases them when the band
// is judged, so steady-state query traffic stops allocating O(n)
// buffers per band per query. The context must never be canceled (use
// exec.Ctx.Detached from a build context): queries have no notion of
// a partial answer.
func (s *Scaled) QueryOn(ec *exec.Ctx, src, dst graph.V, cost *par.Cost) QueryResult {
	if src == dst {
		return QueryResult{Dist: 0, Scale: -1}
	}
	n := int(s.Base.NumVertices())
	step := math.Pow(float64(n), s.Params.Eta)
	if step < 2 {
		step = 2
	}
	zeta := s.Params.Zeta
	var total QueryResult

	// Per-band hop-budget ceilings (Lemma 4.2 in build-rounded units,
	// with the paper's 4x Markov slack, clamped to n).
	hbMax := make([]float64, len(s.Scales))
	globalMax := 16.0
	for i, sc := range s.Scales {
		hb := 4 * s.Params.ExpectedHops(n, 2*sc.D/float64(sc.WHat))
		if hb < 16 {
			hb = 16
		}
		if hb > float64(n) {
			hb = float64(n)
		}
		hbMax[i] = hb
		if hb > globalMax {
			globalMax = hb
		}
	}

	esc := s.Params.Escalation
	if esc < 2 {
		esc = 8
	}
	hb0 := s.Params.InitialHopBudget
	if hb0 < 1 {
		hb0 = 16
	}
	prev := make([]float64, len(s.Scales)) // last budget attempted per band
	for hb := hb0; ; hb *= esc {
		if hb > globalMax {
			hb = globalMax
		}
		roundCosts := make([]*par.Cost, 0, len(s.Scales))
		bestDist := graph.Dist(-1)
		bestScale := -1
		for idx := range s.Scales {
			b := hb
			if b > hbMax[idx] {
				b = hbMax[idx]
			}
			if b <= prev[idx] {
				continue // this band is already exhausted
			}
			prev[idx] = b
			sc := s.Scales[idx]
			floor := sc.D / step
			qHat := graph.W(math.Floor(zeta * floor / b))
			if qHat < 1 {
				qHat = 1
			}
			// A relevant shortcut path has ≤ b hops and weight ≤
			// ~2·sc.D; rounded, it fits in 2·D/qHat + b levels.
			levelCap := graph.Dist(math.Ceil(2*sc.D/float64(qHat))) +
				graph.Dist(math.Ceil(b)) + 16
			g := s.roundedAugmented(qHat)
			bandCost := par.NewCost()
			res := sssp.Dial(g, []graph.V{src}, sssp.Options{
				Cost:    bandCost,
				MaxDist: levelCap,
				Exec:    ec,
			})
			roundCosts = append(roundCosts, bandCost)
			total.Work += bandCost.Work()
			if res.Reached(dst) {
				cand := graph.Dist(qHat) * res.Dist[dst]
				if bestDist < 0 || cand < bestDist {
					bestDist, bestScale = cand, idx
				}
			}
			res.Release(ec)
		}
		// The bands of this round ran side by side: depth is the max,
		// work is the sum.
		round := par.NewCost()
		round.JoinMax(roundCosts...)
		total.Levels += round.Depth()
		cost.AddSequential(round)
		if bestDist >= 0 {
			total.Dist = bestDist
			total.Scale = bestScale
			return total
		}
		if hb >= globalMax {
			break
		}
	}

	// Deterministic fallback: exact on the augmented graph (same
	// metric as the base graph).
	fb := par.NewCost()
	res := sssp.Dijkstra(s.Augmented(), []graph.V{src}, sssp.Options{Cost: fb, Exec: ec})
	cost.AddSequential(fb)
	total.Levels += fb.Depth()
	total.Work += fb.Work()
	total.Dist = res.Dist[dst]
	total.Scale = -1
	total.Fallback = true
	res.Release(ec)
	return total
}

// roundedAugmented returns (and caches) the augmented graph rounded to
// multiples of qHat. qHat = 1 shares the plain augmented graph. The
// O(m) build runs under the cache lock: concurrent cold queries (the
// oracle's QueryBatch fan-out) hitting the same handful of qHat values
// then build each rounded graph once instead of once per goroutine —
// brief serialization beats duplicated builds and peak memory. The
// cache holds at most roundedAugCap granularities (LRU eviction): an
// evicted granularity rebuilds identically on its next use, so the
// bound changes memory, never answers.
func (s *Scaled) roundedAugmented(qHat graph.W) *graph.Graph {
	if qHat <= 1 {
		return s.Augmented()
	}
	aug := s.Augmented()
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.roundedAug[qHat]; ok {
		s.touchRounded(qHat)
		return g
	}
	g := roundGraph(aug, qHat)
	if s.roundedAug == nil {
		s.roundedAug = map[graph.W]*graph.Graph{}
	}
	s.roundedAug[qHat] = g
	s.roundedOrder = append(s.roundedOrder, qHat)
	if len(s.roundedOrder) > roundedAugCap {
		evict := s.roundedOrder[0]
		s.roundedOrder = s.roundedOrder[1:]
		delete(s.roundedAug, evict)
	}
	return g
}

// touchRounded moves qHat to the most-recent end of the eviction
// order; s.mu held. The order list is at most roundedAugCap long, so
// the linear scan is cheaper than any list structure.
func (s *Scaled) touchRounded(qHat graph.W) {
	for i, k := range s.roundedOrder {
		if k == qHat {
			copy(s.roundedOrder[i:], s.roundedOrder[i+1:])
			s.roundedOrder[len(s.roundedOrder)-1] = qHat
			return
		}
	}
}

// RoundedCacheLen reports how many rounded-augmented graphs are
// currently cached (tests assert the roundedAugCap bound).
func (s *Scaled) RoundedCacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.roundedAug)
}

// ExactDistance returns the true s-t distance via Dijkstra on the base
// graph; tests and benchmarks use it as ground truth.
func (s *Scaled) ExactDistance(src, dst graph.V) graph.Dist {
	res := sssp.Dijkstra(s.Base, []graph.V{src}, sssp.Options{})
	return res.Dist[dst]
}
