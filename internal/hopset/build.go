package hopset

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/sssp"
)

// Result is a constructed hopset.
type Result struct {
	// Edges are the hopset edges. Every edge's weight is the exact
	// weight of a concrete path in the original graph (Definition 2.4
	// property 2), so the augmented graph preserves all distances.
	Edges []graph.Edge
	// Stars and Cliques count the two edge kinds (Lemma 4.3 bounds
	// Stars ≤ n and Cliques ≤ (n/n_final)·ρ²).
	Stars, Cliques int
	// Levels is the deepest recursion level reached.
	Levels int
	// Params echoes the construction parameters.
	Params Params
}

// Size returns the number of hopset edges.
func (r *Result) Size() int { return len(r.Edges) }

// Build constructs a hopset for g with Algorithm 4. It works for unit
// or integer weighted graphs alike: the clustering race and the
// center-to-center searches simply run weighted. For the weighted
// multi-scale construction of Section 5 see BuildWeighted, which calls
// this on rounded graphs.
//
// Cost accounting composes per the recursion structure: sibling calls
// at the same level join with max-depth (they run side by side in the
// model), levels compose sequentially.
func Build(g *graph.Graph, p Params, cost *par.Cost) *Result {
	return buildOn(g, g, p, cost)
}

// buildOn runs the recursion racing on gWork (possibly rounded
// weights) while reporting hopset edge weights measured in gTrue
// (original weights). The two graphs must share topology: identical
// vertex count and identical canonical edge list order.
func buildOn(gWork, gTrue *graph.Graph, p Params, cost *par.Cost) *Result {
	p = p.normalized()
	if gWork.NumVertices() != gTrue.NumVertices() || gWork.NumEdges() != gTrue.NumEdges() {
		panic("hopset: work/true graph topology mismatch")
	}
	n := int(gWork.NumVertices())
	res := &Result{Params: p}
	if n == 0 {
		return res
	}
	b := &builder{
		gWork:    gWork,
		gTrue:    gTrue,
		p:        p,
		ec:       p.exec(),
		rho:      p.Rho(n),
		nfinal:   p.NFinal(n),
		betaStep: p.BetaStep(n),
		maxLevel: p.MaxLevels(n),
	}
	b.mark = b.ec.Marks(n)
	defer b.ec.PutMarks(b.mark)
	all := make([]graph.V, n)
	for i := range all {
		all[i] = graph.V(i)
	}
	token := b.nextToken()
	for _, v := range all {
		b.mark[v] = token
	}
	edges := b.recurse(all, token, p.Beta0(n), 0, p.Seed, cost)
	res.Edges = edges
	res.Stars = int(b.stars.Load())
	res.Cliques = int(b.cliques.Load())
	res.Levels = int(b.deepest.Load())
	return res
}

type builder struct {
	gWork, gTrue *graph.Graph
	p            Params
	ec           *exec.Ctx
	rho          float64
	nfinal       int
	betaStep     float64
	maxLevel     int

	// mark/token implement subset-restricted clustering and searches
	// without materializing induced subgraphs. Sibling subtrees own
	// disjoint vertex sets, so concurrent access touches disjoint
	// array elements.
	mark     []int32
	tokenCtr atomic.Int32

	stars, cliques atomic.Int64
	deepest        atomic.Int64
}

func (b *builder) nextToken() int32 { return b.tokenCtr.Add(1) }

// recurse implements HopSet(V, E, β) of Algorithm 4 on the subset.
// level 0 is the special first call that recurses on every cluster.
func (b *builder) recurse(subset []graph.V, token int32, beta float64, level int, seed uint64, cost *par.Cost) []graph.Edge {
	if cur := b.deepest.Load(); int64(level) > cur {
		b.deepest.CompareAndSwap(cur, int64(level))
	}
	// Line 1: base case. A canceled build also bottoms out here: every
	// subtree still in flight returns empty and the whole recursion
	// unwinds within one bucket round per active cluster race.
	if len(subset) <= b.nfinal || level > b.maxLevel || b.ec.Canceled() {
		return nil
	}
	r := rng.New(seed)
	// Line 2: decompose the subset.
	clus := core.Cluster(b.gWork, beta, r.Uint64(), core.Options{
		Cost:     cost,
		Vertices: subset,
		Mark:     b.mark,
		Token:    token,
		Exec:     b.ec,
		Parallel: b.p.Parallel,
	})
	if b.ec.Canceled() {
		return nil // clus is partial; do not consume it
	}

	var out []graph.Edge
	var recurseOn [][]graph.V

	if level == 0 {
		// Lines 3–4: the first call recurses on every cluster.
		recurseOn = clus.Clusters
	} else {
		// Lines 6–7: split into large and small clusters. Lemma 4.3's
		// clique bound rests on there being at most ρ large clusters
		// (each holds ≥ a 1/ρ fraction). When ρ exceeds the subset
		// size — parameter points outside the lemma's asymptotic
		// domain, reachable through Appendix C's δ = 2/η at small n —
		// the threshold degenerates below one vertex and "all
		// clusters are large" would clique O(|V|²) pairs. The
		// invariant is therefore enforced directly: at most
		// min(⌈ρ⌉, 2√|V|+8) clusters — the largest ones — are
		// designated large, which caps the per-call clique at O(|V|)
		// edges without touching the construction inside the lemma's
		// domain.
		threshold := float64(len(subset)) / b.rho
		maxLarge := int(math.Ceil(b.rho))
		if b.rho >= float64(len(subset)) {
			// Outside the lemma's domain (threshold < 1 vertex).
			if guard := int(2*math.Sqrt(float64(len(subset)))) + 8; maxLarge > guard {
				maxLarge = guard
			}
		}
		var largeIdx []int
		for i, cl := range clus.Clusters {
			if float64(len(cl)) >= threshold {
				largeIdx = append(largeIdx, i)
			}
		}
		if len(largeIdx) > maxLarge {
			sort.Slice(largeIdx, func(a, c int) bool {
				la, lc := len(clus.Clusters[largeIdx[a]]), len(clus.Clusters[largeIdx[c]])
				if la != lc {
					return la > lc
				}
				return clus.Centers[largeIdx[a]] < clus.Centers[largeIdx[c]]
			})
			largeIdx = largeIdx[:maxLarge]
		}
		isLarge := make(map[int]bool, len(largeIdx))
		for _, i := range largeIdx {
			isLarge[i] = true
		}
		for i, cl := range clus.Clusters {
			if !isLarge[i] {
				recurseOn = append(recurseOn, cl)
			}
		}
		sort.Ints(largeIdx)
		// Line 8: star edges within each large cluster, with true
		// path weights along the cluster tree.
		for _, ci := range largeIdx {
			out = append(out, b.starEdges(clus, ci, cost)...)
		}
		// Line 9: clique edges between large-cluster centers, with
		// distances raced inside the current subset. The searches
		// from different centers run side by side in the model.
		if len(largeIdx) > 1 {
			out = append(out, b.cliqueEdges(clus, largeIdx, token, cost)...)
		}
	}

	// Line 10 (and line 4): recurse on the chosen clusters in
	// parallel with β increased by K·ε^{-1}·log n (Claim 4.1).
	nextBeta := beta * b.betaStep
	childEdges := make([][]graph.Edge, len(recurseOn))
	childCosts := make([]*par.Cost, len(recurseOn))
	childSeeds := make([]uint64, len(recurseOn))
	childTokens := make([]int32, len(recurseOn))
	for i := range recurseOn {
		childSeeds[i] = r.Uint64()
		childTokens[i] = b.nextToken()
		// Mark before spawning so each child only ever writes marks for
		// its own grandchildren. The store is atomic because a sibling
		// subtree (spawned by an ancestor's DoN) may concurrently read
		// this entry through a boundary neighbor's admits() check; it
		// observes either token, both foreign to it, so its decision is
		// unchanged.
		for _, v := range recurseOn[i] {
			atomic.StoreInt32(&b.mark[v], childTokens[i])
		}
		childCosts[i] = par.NewCost()
	}
	b.ec.DoN(len(recurseOn), func(i int) {
		childEdges[i] = b.recurse(recurseOn[i], childTokens[i], nextBeta, level+1, childSeeds[i], childCosts[i])
	})
	cost.JoinMax(childCosts...)
	for _, ce := range childEdges {
		out = append(out, ce...)
	}
	return out
}

// starEdges emits (v, center, true path weight) for every non-center
// vertex of the cluster, resolving true weights along the cluster tree
// in order of increasing tree distance so parents resolve first.
func (b *builder) starEdges(clus *core.Result, ci int, cost *par.Cost) []graph.Edge {
	cl := clus.Clusters[ci]
	center := clus.Centers[ci]
	if len(cl) <= 1 {
		return nil
	}
	order := make([]graph.V, len(cl))
	copy(order, cl)
	sort.Slice(order, func(i, j int) bool {
		if clus.DistToCenter[order[i]] != clus.DistToCenter[order[j]] {
			return clus.DistToCenter[order[i]] < clus.DistToCenter[order[j]]
		}
		return order[i] < order[j]
	})
	trueDist := make(map[graph.V]graph.W, len(cl))
	trueDist[center] = 0
	edges := make([]graph.Edge, 0, len(cl)-1)
	var work int64
	for _, v := range order {
		if v == center {
			continue
		}
		parent := clus.Parent[v]
		pw, ok := trueDist[parent]
		if !ok {
			panic("hopset: star tree parent unresolved")
		}
		w := pw + b.trueEdgeWeight(v, parent)
		work += int64(b.gTrue.Degree(v))
		trueDist[v] = w
		edges = append(edges, graph.Edge{U: v, V: center, W: w})
	}
	b.stars.Add(int64(len(edges)))
	cost.AddWork(work)
	cost.AddDepth(1)
	return edges
}

// trueEdgeWeight returns the minimum original weight among the
// parallel edges joining u and v; the pair must be adjacent.
func (b *builder) trueEdgeWeight(u, v graph.V) graph.W {
	adj := b.gTrue.Neighbors(u)
	wts := b.gTrue.AdjWeights(u)
	best := graph.W(-1)
	for i, x := range adj {
		if x != v {
			continue
		}
		w := graph.W(1)
		if wts != nil {
			w = wts[i]
		}
		if best == -1 || w < best {
			best = w
		}
	}
	if best == -1 {
		panic(fmt.Sprintf("hopset: vertices %d and %d not adjacent", u, v))
	}
	return best
}

// cliqueEdges connects the centers of the given large clusters with
// edges weighted by the true weight of the raced path between them,
// searching within the current recursion subset only.
func (b *builder) cliqueEdges(clus *core.Result, largeIdx []int, token int32, cost *par.Cost) []graph.Edge {
	centers := make([]graph.V, len(largeIdx))
	for i, ci := range largeIdx {
		centers[i] = clus.Centers[ci]
	}
	results := make([][]graph.Edge, len(centers))
	costs := make([]*par.Cost, len(centers))
	b.ec.DoN(len(centers), func(i int) {
		costs[i] = par.NewCost()
		if b.ec.Canceled() {
			return // the partial clique is discarded with the build
		}
		src := centers[i]
		res := sssp.Weighted(b.gWork, []graph.V{src}, sssp.Options{
			Cost:     costs[i],
			Mark:     b.mark,
			Token:    token,
			Exec:     b.ec,
			Parallel: b.p.Parallel,
		})
		var es []graph.Edge
		if !b.ec.Canceled() {
			for j := i + 1; j < len(centers); j++ {
				dst := centers[j]
				if !res.Reached(dst) {
					continue
				}
				w, ok := b.truePathWeight(res.Parent, dst)
				if !ok {
					continue
				}
				es = append(es, graph.Edge{U: src, V: dst, W: w})
			}
		}
		// The search result is fully consumed: recycle its O(n)
		// arrays for the sibling searches.
		res.Release(b.ec)
		results[i] = es
	})
	cost.JoinMax(costs...)
	var out []graph.Edge
	for i := range results {
		out = append(out, results[i]...)
	}
	b.cliques.Add(int64(len(out)))
	return out
}

// truePathWeight walks parent pointers from v back to the search root,
// accumulating true (original-graph) edge weights. Returns false when
// the walk is broken (should not happen for reached vertices).
func (b *builder) truePathWeight(parent []graph.V, v graph.V) (graph.W, bool) {
	var w graph.W
	steps := 0
	for parent[v] != graph.NoVertex {
		p := parent[v]
		w += b.trueEdgeWeight(v, p)
		v = p
		steps++
		if steps > len(parent)+1 {
			return 0, false
		}
	}
	return w, true
}
