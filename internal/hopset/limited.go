package hopset

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
)

// Limited implements the Appendix C scheme for pushing the query depth
// to Õ(n^α) for arbitrary α > 0 (Theorem C.2): instead of shortcutting
// paths of up to n hops in one shot, run 1/η rounds (η = α/2) where
// each round shortcuts n^{2η}-hop paths down to n^η hops (Lemma C.1)
// and feeds its hopset edges back into the working graph, so the next
// round composes over the shortened paths.
//
// Per Lemma C.1 each round uses δ = 2/η, n_final = n^{η/2}, and
// β_0 = ε/n^{3η} after rounding to granularity ŵ = d·n^{-2η}, for all
// band estimates d; our rounds reuse BuildScaled with exactly those
// parameters.
//
// The returned Result accumulates the edges added across all rounds
// (all with true path weights, so the metric is preserved).
func Limited(g *graph.Graph, alpha float64, eps float64, seed uint64, cost *par.Cost) *Result {
	if alpha <= 0 || alpha >= 2 {
		panic(fmt.Sprintf("hopset: Limited alpha = %v, want (0,2)", alpha))
	}
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("hopset: Limited eps = %v, want (0,1)", eps))
	}
	n := int(g.NumVertices())
	res := &Result{}
	if n < 2 || g.NumEdges() == 0 {
		return res
	}
	eta := alpha / 2
	rounds := int(math.Ceil(1 / eta))
	if rounds < 1 {
		rounds = 1
	}
	if rounds > 8 {
		rounds = 8 // diminishing returns; keeps laptop runs bounded
	}
	r := rng.New(seed)

	// Per-round parameters following Lemma C.1 (clamped to the Params
	// validity domain for small instances). Lemma C.1's δ = 2/η
	// presumes ρ = (K ε^{-1} log n)^δ stays polylogarithmic; at small
	// n a large δ would push the large-cluster threshold |V|/ρ below
	// one vertex and the clique step would degenerate to all-pairs,
	// so δ is clamped — the iteration count, not δ, carries the
	// Appendix C depth argument at this scale.
	delta := 2 / eta
	if delta <= 1 {
		delta = 1.5
	}
	if delta > 3 {
		delta = 3
	}
	gamma1 := eta / 2
	gamma2 := 3 * eta
	if gamma2 >= 1 {
		gamma2 = 0.9
	}
	if gamma1 >= gamma2 {
		gamma1 = gamma2 / 2
	}
	perRoundEps := eps / float64(rounds)
	if perRoundEps <= 0.01 {
		perRoundEps = 0.01
	}

	cur := g
	for round := 0; round < rounds; round++ {
		wp := WeightedParams{
			Params: Params{
				Epsilon:  perRoundEps,
				Delta:    delta,
				Gamma1:   gamma1,
				Gamma2:   gamma2,
				K:        2,
				MinFinal: 8,
				Seed:     r.Uint64(),
			},
			Eta:  eta,
			Zeta: perRoundEps,
		}
		roundCost := par.NewCost()
		s := BuildScaled(cur, wp, roundCost)
		cost.AddSequential(roundCost)
		added := s.Edges()
		if len(added) == 0 {
			break
		}
		res.Edges = append(res.Edges, added...)
		res.Levels++
		// Feed the shortcuts back: the next round shortcuts paths in
		// the augmented graph.
		all := make([]graph.Edge, 0, int(cur.NumEdges())+len(added))
		for _, e := range cur.Edges() {
			w := e.W
			if !cur.Weighted() {
				w = 1
			}
			all = append(all, graph.Edge{U: e.U, V: e.V, W: w})
		}
		all = append(all, added...)
		cur = graph.FromEdges(cur.NumVertices(), all, true)
	}
	return res
}
