package hopset

import (
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/sssp"
)

// withProcs forces GOMAXPROCS above 1 so the sibling-recursion DoN
// fan-out and the Δ-stepping/cluster goroutine paths genuinely
// interleave under `go test -race`.
func withProcs(t *testing.T, p int, body func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	body()
}

// TestBuildParallelMetricPreserved: the multicore build obeys the same
// Definition 2.4 contract as the sequential one — hopset edges are
// real paths, so the augmented metric is unchanged.
func TestBuildParallelMetricPreserved(t *testing.T) {
	withProcs(t, 4, func() {
		p := DefaultParams(2)
		p.Parallel = true
		g := graph.RandomConnectedGNM(600, 2400, 1)
		res := Build(g, p, nil)
		if res.Size() == 0 {
			t.Fatal("empty hopset on a 600-vertex graph")
		}
		checkMetricPreserved(t, g, res.Edges, 3)

		wg := graph.UniformWeights(graph.Grid2D(20, 20), 5, 4)
		wp := DefaultParams(5)
		wp.Parallel = true
		wres := Build(wg, wp, nil)
		checkMetricPreserved(t, wg, wres.Edges, 6)
	})
}

// TestBuildParallelSameStructure: the parallel build races the same
// clustering (bit-identical), so the star edges, recursion shape, and
// clique endpoints must match the sequential build exactly; clique
// edge weights may differ only when the rounded graph admits several
// shortest trees, and then both weights certify the same metric.
func TestBuildParallelSameStructure(t *testing.T) {
	withProcs(t, 4, func() {
		g := graph.UniformWeights(graph.RandomConnectedGNM(500, 2000, 11), 4, 12)
		seq := Build(g, DefaultParams(13), nil)
		pp := DefaultParams(13)
		pp.Parallel = true
		par := Build(g, pp, nil)
		if seq.Stars != par.Stars || seq.Levels != par.Levels || seq.Cliques != par.Cliques {
			t.Fatalf("structure diverged: stars %d/%d cliques %d/%d levels %d/%d",
				seq.Stars, par.Stars, seq.Cliques, par.Cliques, seq.Levels, par.Levels)
		}
		type pair struct{ u, v graph.V }
		key := func(e graph.Edge) pair {
			if e.U < e.V {
				return pair{e.U, e.V}
			}
			return pair{e.V, e.U}
		}
		seqSet := make(map[pair]graph.W, len(seq.Edges))
		for _, e := range seq.Edges {
			seqSet[key(e)] = e.W
		}
		if len(par.Edges) != len(seq.Edges) {
			t.Fatalf("edge count diverged: %d vs %d", len(par.Edges), len(seq.Edges))
		}
		for _, e := range par.Edges {
			w, ok := seqSet[key(e)]
			if !ok {
				t.Fatalf("parallel build added edge (%d,%d) absent sequentially", e.U, e.V)
			}
			if w != e.W {
				// Both must still be real path weights ≥ the true
				// distance (alternative shortest trees in gWork).
				d := sssp.Dijkstra(g, []graph.V{e.U}, sssp.Options{}).Dist[e.V]
				if e.W < d || w < d {
					t.Fatalf("edge (%d,%d): weights %d/%d below true distance %d",
						e.U, e.V, e.W, w, d)
				}
			}
		}
	})
}

// TestBuildScaledParallelQueries: the end-to-end multi-scale build and
// query engine stay sound and tight with the Parallel knob on.
func TestBuildScaledParallelQueries(t *testing.T) {
	withProcs(t, 4, func() {
		g := graph.UniformWeights(graph.Grid2D(15, 15), 30, 21)
		wp := DefaultWeightedParams(22)
		wp.Parallel = true
		s := BuildScaled(g, wp, nil)
		distortion := wp.ExpectedDistortion(int(g.NumVertices()))
		for _, pairSeed := range []graph.V{0, 7, 100} {
			src, dst := pairSeed, g.NumVertices()-1-pairSeed
			exact := s.ExactDistance(src, dst)
			q := s.Query(src, dst, nil)
			if q.Dist < exact {
				t.Fatalf("query (%d,%d) returned %d below exact %d", src, dst, q.Dist, exact)
			}
			if float64(q.Dist) > (1+wp.Zeta)*distortion*float64(exact)+1 {
				t.Fatalf("query (%d,%d) = %d too loose vs exact %d", src, dst, q.Dist, exact)
			}
		}
	})
}
