package hopset

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/sssp"
)

// checkMetricPreserved asserts Definition 2.4 property 2 in aggregate:
// adding the hopset edges to g changes no shortest-path distance
// (every hopset edge is a real path, so it can only tie, never beat,
// the metric). Verified from a few sampled sources.
func checkMetricPreserved(t *testing.T, g *graph.Graph, edges []graph.Edge, seed uint64) {
	t.Helper()
	aug := augment(g, edges)
	r := rng.New(seed)
	for trial := 0; trial < 4; trial++ {
		s := r.Int31n(g.NumVertices())
		base := sssp.Dijkstra(g, []graph.V{s}, sssp.Options{})
		plus := sssp.Dijkstra(aug, []graph.V{s}, sssp.Options{})
		for v := range base.Dist {
			if base.Dist[v] != plus.Dist[v] {
				t.Fatalf("hopset changed metric: dist(%d,%d) %d -> %d",
					s, v, base.Dist[v], plus.Dist[v])
			}
		}
	}
}

func augment(g *graph.Graph, extra []graph.Edge) *graph.Graph {
	all := make([]graph.Edge, 0, int(g.NumEdges())+len(extra))
	for _, e := range g.Edges() {
		w := e.W
		if !g.Weighted() {
			w = 1
		}
		all = append(all, graph.Edge{U: e.U, V: e.V, W: w})
	}
	all = append(all, extra...)
	return graph.FromEdges(g.NumVertices(), all, true)
}

// hopsNeeded returns the smallest h (from the probe set) such that the
// h-hop distance in g ∪ extra is within factor (1+eps) of exact.
func hopsNeeded(g *graph.Graph, extra []graph.Edge, s, t graph.V, eps float64) int {
	exact := sssp.Dijkstra(g, []graph.V{s}, sssp.Options{}).Dist[t]
	if exact == graph.InfDist {
		return -1
	}
	bound := graph.Dist(math.Ceil(float64(exact) * (1 + eps)))
	for h := 1; h <= int(g.NumVertices()); h *= 2 {
		d := sssp.HopLimited(g, extra, []graph.V{s}, h, nil)
		if d[t] <= bound {
			// Refine within (h/2, h].
			lo, hi := h/2+1, h
			for lo < hi {
				mid := (lo + hi) / 2
				if sssp.HopLimited(g, extra, []graph.V{s}, mid, nil)[t] <= bound {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			return lo
		}
	}
	return int(g.NumVertices())
}

func TestBuildMetricPreserved(t *testing.T) {
	g := graph.RandomConnectedGNM(600, 2400, 1)
	res := Build(g, DefaultParams(2), nil)
	if res.Size() == 0 {
		t.Fatal("empty hopset on a 600-vertex graph")
	}
	checkMetricPreserved(t, g, res.Edges, 3)
}

func TestBuildMetricPreservedWeighted(t *testing.T) {
	g := graph.UniformWeights(graph.Grid2D(20, 20), 5, 4)
	res := Build(g, DefaultParams(5), nil)
	checkMetricPreserved(t, g, res.Edges, 6)
}

func TestBuildEdgeWeightsAreRealPaths(t *testing.T) {
	// Stronger per-edge check on a small graph: every hopset edge
	// weight is ≥ the true distance and ≤ the weight of some path,
	// i.e. finite and achievable; with exact distances from u it must
	// satisfy dist(u,v) ≤ w.
	g := graph.UniformWeights(graph.RandomConnectedGNM(120, 360, 7), 6, 8)
	res := Build(g, DefaultParams(9), nil)
	for _, e := range res.Edges {
		d := sssp.Dijkstra(g, []graph.V{e.U}, sssp.Options{}).Dist[e.V]
		if d == graph.InfDist {
			t.Fatalf("hopset edge (%d,%d) between disconnected vertices", e.U, e.V)
		}
		if e.W < d {
			t.Fatalf("hopset edge (%d,%d) weight %d below true distance %d",
				e.U, e.V, e.W, d)
		}
	}
}

func TestBuildSizeBounds(t *testing.T) {
	// Lemma 4.3: ≤ n star edges and ≤ (n/n_final)·ρ² clique edges.
	g := graph.RandomConnectedGNM(2000, 8000, 11)
	p := DefaultParams(12)
	res := Build(g, p, nil)
	n := int(g.NumVertices())
	if res.Stars > n {
		t.Fatalf("stars %d exceed n = %d", res.Stars, n)
	}
	rho := p.Rho(n)
	cliqueBound := float64(n) / float64(p.NFinal(n)) * rho * rho
	if float64(res.Cliques) > cliqueBound {
		t.Fatalf("cliques %d exceed Lemma 4.3 bound %.0f", res.Cliques, cliqueBound)
	}
	if res.Stars+res.Cliques != res.Size() {
		t.Fatalf("edge classification %d+%d != %d", res.Stars, res.Cliques, res.Size())
	}
}

func TestBuildReducesHops(t *testing.T) {
	// The defining benefit: on a high-diameter graph, far fewer hops
	// suffice for near-exact distances once the hopset is added.
	g := graph.Grid2D(40, 40)
	res := Build(g, DefaultParams(13), nil)
	r := rng.New(14)
	worse := 0
	const trials = 8
	for i := 0; i < trials; i++ {
		s := r.Int31n(g.NumVertices())
		u := r.Int31n(g.NumVertices())
		exact := sssp.Dijkstra(g, []graph.V{s}, sssp.Options{}).Dist[u]
		if exact < 20 {
			continue // short pairs carry no signal
		}
		hWith := hopsNeeded(g, res.Edges, s, u, 0.5)
		// Without the hopset, an unweighted graph needs exactly
		// `exact` hops.
		if float64(hWith) > 0.6*float64(exact) {
			worse++
		}
	}
	if worse > trials/2 {
		t.Fatalf("hopset failed to reduce hops on %d of %d long pairs", worse, trials)
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := graph.RandomConnectedGNM(300, 1200, 15)
	a := Build(g, DefaultParams(16), nil)
	b := Build(g, DefaultParams(16), nil)
	if a.Size() != b.Size() {
		t.Fatalf("same seed produced different sizes %d vs %d", a.Size(), b.Size())
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed produced different edges")
		}
	}
}

func TestBuildTinyGraphs(t *testing.T) {
	if got := Build(graph.FromEdges(0, nil, false), DefaultParams(1), nil).Size(); got != 0 {
		t.Fatalf("empty graph hopset size %d", got)
	}
	if got := Build(graph.Path(5), DefaultParams(1), nil).Size(); got != 0 {
		t.Fatalf("graph below n_final should produce no edges, got %d", got)
	}
}

func TestBuildCostAccounting(t *testing.T) {
	g := graph.RandomConnectedGNM(800, 3200, 17)
	cost := par.NewCost()
	Build(g, DefaultParams(18), cost)
	if cost.Work() == 0 || cost.Depth() == 0 {
		t.Fatal("no cost recorded")
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Epsilon: 0, Delta: 1.5, Gamma1: 0.1, Gamma2: 0.5},
		{Epsilon: 0.5, Delta: 1, Gamma1: 0.1, Gamma2: 0.5},
		{Epsilon: 0.5, Delta: 1.5, Gamma1: 0.5, Gamma2: 0.1},
		{Epsilon: 0.5, Delta: 1.5, Gamma1: 0.1, Gamma2: 1.2},
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad params %d did not panic", i)
				}
			}()
			p.normalized()
		}()
	}
}

func TestParamsDerived(t *testing.T) {
	p := DefaultParams(1)
	n := 10000
	if p.Rho(n) <= 1 {
		t.Fatal("rho must exceed 1")
	}
	if p.BetaStep(n) <= 1 {
		t.Fatal("beta step must exceed 1")
	}
	if p.NFinal(n) < p.MinFinal {
		t.Fatal("NFinal below MinFinal")
	}
	if p.Beta0(n) <= 0 || p.Beta0(n) >= 1 {
		t.Fatalf("beta0 = %v", p.Beta0(n))
	}
	// Hop bound grows linearly in d.
	if p.ExpectedHops(n, 200) <= p.ExpectedHops(n, 100) {
		t.Fatal("hop bound not monotone in distance")
	}
	if p.MaxLevels(n) < 2 {
		t.Fatal("MaxLevels too small")
	}
	if p.ExpectedDistortion(n) <= 1 {
		t.Fatal("distortion envelope must exceed 1")
	}
}

func TestBuildScaledMetricAndQuery(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(400, 1600, 19), 40, 20)
	cost := par.NewCost()
	s := BuildScaled(g, DefaultWeightedParams(21), cost)
	if len(s.Scales) == 0 {
		t.Fatal("no scales built")
	}
	checkMetricPreserved(t, g, s.Edges(), 22)

	r := rng.New(23)
	worstRatio := 1.0
	sumRatio, cnt := 0.0, 0
	for i := 0; i < 20; i++ {
		src := r.Int31n(g.NumVertices())
		dst := r.Int31n(g.NumVertices())
		if src == dst {
			continue
		}
		exact := s.ExactDistance(src, dst)
		q := s.Query(src, dst, nil)
		if q.Dist < exact {
			t.Fatalf("query returned %d below exact %d", q.Dist, exact)
		}
		ratio := float64(q.Dist) / float64(exact)
		sumRatio += ratio
		cnt++
		if ratio > worstRatio {
			worstRatio = ratio
		}
	}
	if cnt == 0 {
		t.Fatal("no query samples")
	}
	if mean := sumRatio / float64(cnt); mean > 1.4 {
		t.Fatalf("mean query ratio %.3f too loose", mean)
	}
	if worstRatio > 2.0 {
		t.Fatalf("worst query ratio %.3f exceeds envelope", worstRatio)
	}
}

func TestQueryIdenticalEndpoints(t *testing.T) {
	g := graph.Path(20)
	s := BuildScaled(g, DefaultWeightedParams(1), nil)
	if q := s.Query(5, 5, nil); q.Dist != 0 {
		t.Fatalf("self query dist %d", q.Dist)
	}
}

func TestQueryDisconnected(t *testing.T) {
	g := graph.FromEdges(10, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}}, false)
	s := BuildScaled(g, DefaultWeightedParams(2), nil)
	q := s.Query(0, 3, nil)
	if q.Dist != graph.InfDist {
		t.Fatalf("disconnected query dist %d, want InfDist", q.Dist)
	}
	if !q.Fallback {
		t.Fatal("disconnected query must use the fallback")
	}
}

func TestQueryDepthBeatsPlainSearchOnGrid(t *testing.T) {
	// Corollary 5.4's point: when the weighted diameter is large,
	// the hopset query needs far fewer levels than plain weighted
	// parallel BFS (whose level count equals the distance). Heavy
	// weights put the instance in that regime; γ2 = 0.7 gives coarse
	// top-level clusters so the shortcut paths have few hops.
	g := graph.UniformWeights(graph.Grid2D(40, 40), 1000, 24)
	wp := DefaultWeightedParams(25)
	wp.Gamma2 = 0.7
	s := BuildScaled(g, wp, nil)
	r := rng.New(26)
	wins, valid := 0, 0
	for i := 0; i < 10; i++ {
		src := r.Int31n(g.NumVertices())
		dst := r.Int31n(g.NumVertices())
		exact := s.ExactDistance(src, dst)
		if exact < 5000 {
			continue
		}
		q := s.Query(src, dst, nil)
		if q.Fallback {
			continue
		}
		valid++
		// Plain Dial would need `exact` levels.
		if q.Levels < exact {
			wins++
		}
	}
	if valid == 0 {
		t.Skip("no long pairs sampled")
	}
	if wins*2 < valid {
		t.Fatalf("query depth beat plain search on only %d of %d long pairs", wins, valid)
	}
}

func TestKS97(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(300, 1200, 27), 9, 28)
	res := KS97(g, 29, nil)
	if res.Size() == 0 {
		t.Fatal("KS97 produced no edges")
	}
	// Every KS97 edge is an exact hub-pair distance.
	for i, e := range res.Edges {
		if i > 20 {
			break // spot check
		}
		d := sssp.Dijkstra(g, []graph.V{e.U}, sssp.Options{}).Dist[e.V]
		if d != e.W {
			t.Fatalf("KS97 edge (%d,%d) weight %d != exact %d", e.U, e.V, e.W, d)
		}
	}
	checkMetricPreserved(t, g, res.Edges, 30)
	// Size ≈ C(√n, 2) ≤ n.
	n := int(g.NumVertices())
	if res.Size() > n {
		t.Fatalf("KS97 size %d exceeds n = %d", res.Size(), n)
	}
}

func TestKS97ReducesHopsOnPath(t *testing.T) {
	g := graph.Path(400)
	res := KS97(g, 31, nil)
	h := hopsNeeded(g, res.Edges, 0, 399, 0.1)
	// With ~20 hubs on a 400-path, expected gap ~20; allow 4x.
	if h > 160 {
		t.Fatalf("KS97 hop count %d on 400-path; want ≲ 4√n", h)
	}
}

func TestCohenStyle(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(400, 1600, 32), 7, 33)
	res := CohenStyle(g, 2, 34, nil)
	if res.Size() == 0 {
		t.Fatal("CohenStyle produced no edges")
	}
	checkMetricPreserved(t, g, res.Edges, 35)
}

func TestCohenStyleReducesHopsOnPath(t *testing.T) {
	g := graph.Path(500)
	res := CohenStyle(g, 2, 36, nil)
	h := hopsNeeded(g, res.Edges, 0, 499, 0.2)
	if h >= 250 {
		t.Fatalf("CohenStyle did not reduce hops: %d of 499", h)
	}
}

func TestLimited(t *testing.T) {
	g := graph.UniformWeights(graph.Grid2D(18, 18), 4, 37)
	res := Limited(g, 0.5, 0.4, 38, nil)
	if res.Size() == 0 {
		t.Fatal("Limited produced no edges")
	}
	checkMetricPreserved(t, g, res.Edges, 39)
	// Hop reduction on a long pair.
	h := hopsNeeded(g, res.Edges, 0, g.NumVertices()-1, 0.5)
	exactHops := 34 // grid corner-to-corner hop distance (17+17)
	if h >= exactHops {
		t.Fatalf("Limited hopset did not reduce hops: %d vs %d", h, exactHops)
	}
}

func TestLimitedPanics(t *testing.T) {
	g := graph.Path(10)
	for _, bad := range []struct{ alpha, eps float64 }{{0, 0.5}, {2.5, 0.5}, {0.5, 0}, {0.5, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Limited(%v, %v) did not panic", bad.alpha, bad.eps)
				}
			}()
			Limited(g, bad.alpha, bad.eps, 1, nil)
		}()
	}
}

// Property: on arbitrary connected weighted graphs the full pipeline
// returns sound answers: exact ≤ Query ≤ fallback-safe, metric
// preserved.
func TestPipelineSoundnessProperty(t *testing.T) {
	f := func(seedRaw uint32) bool {
		seed := uint64(seedRaw)
		r := rng.New(seed ^ 0xbeef)
		n := int32(r.Intn(120) + 20)
		m := int64(n) - 1 + int64(r.Intn(200))
		if max := int64(n) * int64(n-1) / 2; m > max {
			m = max
		}
		g := graph.UniformWeights(graph.RandomConnectedGNM(n, m, seed), 9, seed^3)
		s := BuildScaled(g, DefaultWeightedParams(seed^7), nil)
		src := graph.V(r.Int31n(n))
		dst := graph.V(r.Int31n(n))
		exact := s.ExactDistance(src, dst)
		q := s.Query(src, dst, nil)
		if q.Dist < exact {
			return false
		}
		// Generous soundness envelope; tightness is asserted
		// statistically elsewhere.
		if exact > 0 && float64(q.Dist) > 3*float64(exact) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildUnweighted(b *testing.B) {
	g := graph.RandomConnectedGNM(10000, 40000, 1)
	p := DefaultParams(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i)
		Build(g, p, nil)
	}
}

func BenchmarkBuildScaledWeighted(b *testing.B) {
	g := graph.UniformWeights(graph.Grid2D(60, 60), 16, 1)
	wp := DefaultWeightedParams(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wp.Seed = uint64(i)
		BuildScaled(g, wp, nil)
	}
}

func BenchmarkQuery(b *testing.B) {
	g := graph.UniformWeights(graph.Grid2D(60, 60), 16, 1)
	s := BuildScaled(g, DefaultWeightedParams(2), nil)
	s.Query(0, g.NumVertices()-1, nil) // warm caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query(0, g.NumVertices()-1, nil)
	}
}
