package hopset

import (
	"container/heap"
	"math"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/sssp"
)

// This file implements the two baseline rows of Figure 2.
//
// KS97 is the exact hopset of Klein–Subramanian / Shi–Spencer: sample
// ≈√n hub vertices and connect every hub pair with an exact-distance
// edge. Hop count O(√n log n) whp, size O(n), construction work
// O(m√n) — the "cheap hopset, expensive construction" end of the
// table.
//
// CohenStyle is a hierarchical-sampling hopset standing in for Cohen's
// [Coh00] pairwise-cover construction (no implementation of the exact
// construction exists publicly; see DESIGN.md for the substitution
// argument). It builds a Thorup–Zwick-flavored hub hierarchy: level
// sets V = S_0 ⊇ S_1 ⊇ ... ⊇ S_L sampled geometrically; every level-i
// hub connects to its level-i "bunch" (the level-i hubs closer than
// its nearest level-(i+1) pivot) and to that pivot; the top level is a
// clique. This reproduces the qualitative Figure 2 row: small
// (polylog-flavored) hop counts, size n^{1+1/(L+1)}·polylog, and
// super-linear construction work.

// KS97 builds the √n-sampling exact hopset. Every hopset edge carries
// the exact distance between its hub endpoints (a real path weight).
func KS97(g *graph.Graph, seed uint64, cost *par.Cost) *Result {
	n := int(g.NumVertices())
	res := &Result{}
	if n < 2 || g.NumEdges() == 0 {
		return res
	}
	r := rng.New(seed)
	k := int(math.Ceil(math.Sqrt(float64(n))))
	perm := r.Perm(n)
	hubs := make([]graph.V, k)
	for i := 0; i < k; i++ {
		hubs[i] = perm[i]
	}
	// Exact SSSP from every hub; the searches are independent, so
	// they run side by side in the model.
	costs := make([]*par.Cost, k)
	edgeSets := make([][]graph.Edge, k)
	par.DoN(k, func(i int) {
		costs[i] = par.NewCost()
		d := sssp.Dijkstra(g, []graph.V{hubs[i]}, sssp.Options{Cost: costs[i]})
		var es []graph.Edge
		for j := i + 1; j < k; j++ {
			if d.Dist[hubs[j]] < graph.InfDist {
				es = append(es, graph.Edge{U: hubs[i], V: hubs[j], W: d.Dist[hubs[j]]})
			}
		}
		edgeSets[i] = es
	})
	cost.JoinMax(costs...)
	for _, es := range edgeSets {
		res.Edges = append(res.Edges, es...)
	}
	res.Cliques = len(res.Edges)
	return res
}

// CohenStyle builds the hierarchical-sampling hopset with the given
// number of intermediate levels (≥ 1; 2–3 is typical).
func CohenStyle(g *graph.Graph, levels int, seed uint64, cost *par.Cost) *Result {
	n := int(g.NumVertices())
	res := &Result{Levels: levels}
	if n < 2 || g.NumEdges() == 0 || levels < 1 {
		return res
	}
	r := rng.New(seed)
	// Sampling probability per level: |S_i| ≈ n^{1 - i/(levels+1)}.
	p := math.Pow(float64(n), -1.0/float64(levels+1))

	inLevel := make([][]bool, levels+1)
	inLevel[0] = make([]bool, n)
	for v := range inLevel[0] {
		inLevel[0][v] = true
	}
	levelSets := make([][]graph.V, levels+1)
	levelSets[0] = make([]graph.V, n)
	for v := range levelSets[0] {
		levelSets[0][v] = graph.V(v)
	}
	for i := 1; i <= levels; i++ {
		inLevel[i] = make([]bool, n)
		for _, v := range levelSets[i-1] {
			if r.Bernoulli(p) {
				inLevel[i][v] = true
				levelSets[i] = append(levelSets[i], v)
			}
		}
	}
	// Guarantee a non-empty top level so the clique glues the
	// hierarchy together.
	if len(levelSets[levels]) == 0 && len(levelSets[levels-1]) > 0 {
		v := levelSets[levels-1][0]
		inLevel[levels][v] = true
		levelSets[levels] = append(levelSets[levels], v)
	}

	// Bunches per level: from every hub v ∈ S_i run Dijkstra until the
	// first S_{i+1} pivot settles; connect v to the pivot and to all
	// S_i hubs settled strictly earlier.
	for i := 0; i < levels; i++ {
		hubs := levelSets[i]
		costs := make([]*par.Cost, len(hubs))
		edgeSets := make([][]graph.Edge, len(hubs))
		par.DoN(len(hubs), func(hi int) {
			costs[hi] = par.NewCost()
			edgeSets[hi] = bunchEdges(g, hubs[hi], inLevel[i], inLevel[i+1], costs[hi])
		})
		cost.JoinMax(costs...)
		for _, es := range edgeSets {
			res.Edges = append(res.Edges, es...)
		}
	}
	// Top-level clique with exact distances.
	top := levelSets[levels]
	costs := make([]*par.Cost, len(top))
	edgeSets := make([][]graph.Edge, len(top))
	par.DoN(len(top), func(i int) {
		costs[i] = par.NewCost()
		d := sssp.Dijkstra(g, []graph.V{top[i]}, sssp.Options{Cost: costs[i]})
		var es []graph.Edge
		for j := i + 1; j < len(top); j++ {
			if d.Dist[top[j]] < graph.InfDist {
				es = append(es, graph.Edge{U: top[i], V: top[j], W: d.Dist[top[j]]})
			}
		}
		edgeSets[i] = es
	})
	cost.JoinMax(costs...)
	for _, es := range edgeSets {
		res.Edges = append(res.Edges, es...)
		res.Cliques += len(es)
	}
	return res
}

// bunchEdges runs an early-terminating Dijkstra from hub v: it settles
// vertices in distance order until the first member of nextLevel
// (other than v itself) settles, emitting edges from v to every
// sameLevel hub settled before that pivot, plus the pivot edge.
func bunchEdges(g *graph.Graph, v graph.V, sameLevel, nextLevel []bool, cost *par.Cost) []graph.Edge {
	h := &bunchHeap{}
	dist := map[graph.V]graph.Dist{v: 0}
	settled := map[graph.V]bool{}
	heap.Push(h, qe{v, 0})
	var out []graph.Edge
	var ops int64
	for h.Len() > 0 {
		top := heap.Pop(h).(qe)
		if settled[top.v] || top.d > dist[top.v] {
			continue
		}
		settled[top.v] = true
		if top.v != v {
			if nextLevel[top.v] {
				out = append(out, graph.Edge{U: v, V: top.v, W: top.d})
				break // pivot reached: bunch complete
			}
			if sameLevel[top.v] {
				out = append(out, graph.Edge{U: v, V: top.v, W: top.d})
			}
		}
		adj := g.Neighbors(top.v)
		wts := g.AdjWeights(top.v)
		for i, u := range adj {
			ops++
			if settled[u] {
				continue
			}
			w := graph.W(1)
			if wts != nil {
				w = wts[i]
			}
			nd := top.d + w
			if d, ok := dist[u]; !ok || nd < d {
				dist[u] = nd
				heap.Push(h, qe{u, nd})
			}
		}
	}
	cost.AddWork(ops)
	cost.AddDepth(ops)
	return out
}

// qe is a (vertex, distance) heap entry.
type qe struct {
	v graph.V
	d graph.Dist
}

type bunchHeap []qe

func (h bunchHeap) Len() int            { return len(h) }
func (h bunchHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h bunchHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *bunchHeap) Push(x interface{}) { *h = append(*h, x.(qe)) }
func (h *bunchHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
