package hopset

import (
	"context"
	"sort"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
)

// TestBuildExecEquivalence: driving the build through an execution
// context must reproduce the deprecated knobs exactly — a sequential
// ctx matches the legacy sequential build, a parallel ctx matches
// Parallel=true.
func TestBuildExecEquivalence(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(600, 2400, 21), 12, 22)
	base := DefaultParams(7)
	base.Gamma2 = 0.6

	legacySeq := Build(g, base, nil)
	pSeq := base
	pSeq.Exec = exec.Sequential()
	seq := Build(g, pSeq, nil)
	assertSameEdges(t, "sequential-ctx", legacySeq.Edges, seq.Edges)

	pLegacyPar := base
	pLegacyPar.Parallel = true
	legacyPar := Build(g, pLegacyPar, nil)
	pPar := base
	pPar.Exec = exec.Parallel(4)
	par := Build(g, pPar, nil)
	assertSameEdges(t, "parallel-ctx", legacyPar.Edges, par.Edges)
}

func assertSameEdges(t *testing.T, label string, want, got []graph.Edge) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d edges, want %d", label, len(got), len(want))
	}
	key := func(e graph.Edge) [3]int64 { return [3]int64{int64(e.U), int64(e.V), int64(e.W)} }
	a := make([][3]int64, len(want))
	b := make([][3]int64, len(got))
	for i := range want {
		a[i], b[i] = key(want[i]), key(got[i])
	}
	less := func(s [][3]int64) func(i, j int) bool {
		return func(i, j int) bool {
			for k := 0; k < 3; k++ {
				if s[i][k] != s[j][k] {
					return s[i][k] < s[j][k]
				}
			}
			return false
		}
	}
	sort.Slice(a, less(a))
	sort.Slice(b, less(b))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: edge %d = %v, want %v", label, i, b[i], a[i])
		}
	}
}

// TestBuildCancel aborts a hopset build mid-recursion: it must return
// promptly with a nil error from the context owner's point of view
// being the signal that the result is garbage.
func TestBuildCancel(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(30_000, 240_000, 31), 32, 32)
	ctx, cancel := context.WithCancel(context.Background())
	p := DefaultParams(3)
	p.Exec = exec.New(exec.Options{Context: ctx, Workers: 4})
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	go func() {
		Build(g, p, nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("canceled hopset build did not return")
	}
	if p.Exec.Err() == nil {
		t.Fatal("expected canceled context")
	}
}
