package hopset

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
)

// WeightedParams extends Params with the Section 5 knobs: distance
// estimates are tried in powers of n^Eta, and edge weights are rounded
// to multiples of ŵ = Zeta·d/n before racing (Lemma 5.2 keeps the
// distortion ≤ Zeta per band).
type WeightedParams struct {
	Params
	// Eta is the band granularity η: a band covers distances
	// [d, d·n^Eta).
	Eta float64
	// Zeta is the rounding distortion ζ ∈ (0, 1).
	Zeta float64
	// Escalation is the query hop-budget growth factor per round
	// (default 8). Small factors probe tightly but pay more rounds;
	// large factors overshoot the rounding granularity. The ablation
	// experiment sweeps this.
	Escalation float64
	// InitialHopBudget is the query's first hop budget (default 16).
	// Setting it to the Lemma 4.2 bound disables the adaptive
	// small-start; the ablation shows that costs orders of magnitude
	// of query depth because a huge budget forces fine rounding.
	InitialHopBudget float64
}

// DefaultWeightedParams mirrors DefaultParams with the concrete
// example constants of Corollary 5.4 scaled to laptop instances.
func DefaultWeightedParams(seed uint64) WeightedParams {
	return WeightedParams{
		Params: DefaultParams(seed),
		Eta:    0.15,
		Zeta:   0.25,
	}
}

func (wp WeightedParams) normalized() WeightedParams {
	wp.Params = wp.Params.normalized()
	if wp.Eta <= 0 || wp.Eta > 1 {
		panic(fmt.Sprintf("hopset: Eta = %v, want (0,1]", wp.Eta))
	}
	if wp.Zeta <= 0 || wp.Zeta >= 1 {
		panic(fmt.Sprintf("hopset: Zeta = %v, want (0,1)", wp.Zeta))
	}
	if wp.Escalation < 2 {
		wp.Escalation = 8
	}
	if wp.InitialHopBudget < 1 {
		wp.InitialHopBudget = 16
	}
	return wp
}

// Scale is one distance band of the Section 5 construction.
type Scale struct {
	// D is the top of the band: the band is responsible for s-t pairs
	// with dist(s,t) ∈ [D/n^Eta, D].
	D float64
	// WHat is the rounding granularity used when building this band's
	// hopset (1 = no rounding).
	WHat graph.W
	// Res is the hopset built on the rounded graph; its edges carry
	// true (unrounded) path weights.
	Res *Result
}

// Scaled is a queryable multi-scale hopset (the full Section 5
// object): per-band hopsets plus the machinery to answer approximate
// s-t distance queries with hop/level-limited searches.
type Scaled struct {
	// Base is the graph the hopset was built for.
	Base *graph.Graph
	// Scales are the distance bands, ascending by D.
	Scales []Scale
	// Params echoes the construction parameters.
	Params WeightedParams

	mu  sync.Mutex
	aug *graph.Graph // lazily built Base ∪ all hopset edges
	// roundedAug caches augmented graphs rounded at each query
	// granularity encountered, bounded to roundedAugCap entries with
	// LRU eviction (roundedOrder is the recency list, most recent
	// last): query hop budgets escalate geometrically, so steady-state
	// traffic touches a handful of granularities, but an adversarial
	// query mix must not grow the cache without bound.
	roundedAug   map[graph.W]*graph.Graph
	roundedOrder []graph.W
}

// roundedAugCap bounds the rounded-augmented-graph cache. Budgets
// escalate by Params.Escalation per round from InitialHopBudget up to
// the Lemma 4.2 ceiling, so the distinct qHat values per band form a
// short geometric ladder; 8 entries cover every ladder seen in the
// test suite with room to spare while capping worst-case memory at
// 8 augmented-graph copies.
const roundedAugCap = 8

// NewScaled assembles a queryable Scaled from already-built parts —
// the snapshot decoder's entry point. The caller guarantees the scales
// were produced by BuildScaled over base with wp (the codec verifies
// structural invariants; semantic fidelity is the encoder's job).
// Query caches (augmented and rounded-augmented graphs) start cold and
// repopulate lazily, exactly as after a fresh build.
func NewScaled(base *graph.Graph, scales []Scale, wp WeightedParams) *Scaled {
	return &Scaled{Base: base, Scales: scales, Params: wp, roundedAug: map[graph.W]*graph.Graph{}}
}

// Rebind points the hopset at an equivalent base graph (same
// fingerprint; the caller validates). Snapshot loading uses it to
// share the caller's already-resident graph instead of the embedded
// copy. The augmented-graph caches survive: they are built from edge
// values only, and a fingerprint-equal graph has bit-identical edges.
func (s *Scaled) Rebind(base *graph.Graph) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Base = base
}

// Edges returns the union of all bands' hopset edges.
func (s *Scaled) Edges() []graph.Edge {
	var out []graph.Edge
	for i := range s.Scales {
		out = append(out, s.Scales[i].Res.Edges...)
	}
	return out
}

// Size returns the total hopset size over all bands.
func (s *Scaled) Size() int {
	total := 0
	for i := range s.Scales {
		total += s.Scales[i].Res.Size()
	}
	return total
}

// BuildScaled constructs the Section 5 multi-scale hopset. For every
// distance band d = n^{Eta·j} it rounds weights to multiples of
// ŵ = Zeta·d/n (Lemma 5.2 with k = n, c = n^Eta) and runs Algorithm 4
// on the rounded graph with weighted clustering and weighted searches.
// Bands whose rounding granularity collapses to ŵ = 1 share a single
// build (they would race identical graphs).
//
// On an unweighted graph this degenerates to the single Theorem 4.4
// construction plus the band bookkeeping used by queries
// (Corollary 4.5).
func BuildScaled(g *graph.Graph, wp WeightedParams, cost *par.Cost) *Scaled {
	wp = wp.normalized()
	n := int(g.NumVertices())
	s := &Scaled{Base: g, Params: wp, roundedAug: map[graph.W]*graph.Graph{}}
	if n == 0 || g.NumEdges() == 0 {
		return s
	}
	nf := float64(n)
	minW := float64(g.MinWeight())
	maxDist := nf * float64(g.MaxWeight()) // upper bound on any finite distance
	step := math.Pow(nf, wp.Eta)
	if step < 2 {
		step = 2
	}

	// Enumerate bands: D values step× apart covering [minW, maxDist].
	// Bands wholly below the lightest edge can contain no distance
	// and are skipped — with the Appendix B preprocessing this is
	// what keeps the band count O(1/η) even when absolute weights are
	// astronomically large.
	var ds []float64
	for d := step; ; d *= step {
		if d >= minW {
			ds = append(ds, d)
		}
		if d >= maxDist {
			break
		}
	}
	r := rng.New(wp.Seed)
	type job struct {
		d      float64
		wHat   graph.W
		edges  int // number of band-relevant edges (dedupe key)
		seed   uint64
		reuse  bool
		filter []graph.Edge
	}
	// Band-relevant edges: an edge heavier than ~2·D cannot lie on a
	// path this band is responsible for (weight ≤ (1+distortion)·D),
	// so it is dropped before rounding. This caps the rounded weight
	// range at O(n·step/ζ) regardless of the absolute weight scale.
	relevant := func(d float64) []graph.Edge {
		capW := 2 * d
		var out []graph.Edge
		for _, e := range g.Edges() {
			w := e.W
			if !g.Weighted() {
				w = 1
			}
			if float64(w) <= capW {
				out = append(out, graph.Edge{U: e.U, V: e.V, W: w})
			}
		}
		return out
	}
	jobs := make([]job, 0, len(ds))
	for _, d := range ds {
		wHat := graph.W(math.Floor(wp.Zeta * d / nf))
		if wHat < 1 {
			wHat = 1
		}
		filter := relevant(d)
		jb := job{d: d, wHat: wHat, edges: len(filter), seed: r.Uint64(), filter: filter}
		if len(jobs) > 0 {
			prev := jobs[len(jobs)-1]
			if prev.wHat == 1 && wHat == 1 && prev.edges == len(filter) {
				// Identical rounded graph as the previous band: reuse
				// its hopset.
				jb.reuse = true
				jb.filter = nil
			}
		}
		jobs = append(jobs, jb)
	}

	// The bands are independent: they run side by side in the model.
	ec := wp.Params.exec()
	costs := make([]*par.Cost, len(jobs))
	scales := make([]Scale, len(jobs))
	for i, jb := range jobs {
		if ec.Canceled() {
			// Abandon the remaining bands; the partial Scaled is
			// invalid and must be discarded by the Ctx owner.
			break
		}
		if jb.reuse {
			continue // resolved after the parallel phase
		}
		costs[i] = par.NewCost()
		gTrue := graph.FromEdges(g.NumVertices(), jb.filter, true)
		gWork := roundGraph(gTrue, jb.wHat)
		p := wp.Params
		p.Seed = jb.seed
		res := buildOn(gWork, gTrue, p, costs[i])
		scales[i] = Scale{D: jb.d, WHat: jb.wHat, Res: res}
	}
	cost.JoinMax(costs...)
	for i, jb := range jobs {
		if jb.reuse && scales[i-1].Res != nil {
			scales[i] = Scale{D: jb.d, WHat: 1, Res: scales[i-1].Res}
		}
	}
	s.Scales = scales
	return s
}

// roundGraph returns a copy of g with weights ⌈w/wHat⌉ (Lemma 5.2's
// rounding), preserving the canonical edge order so edge ids align.
func roundGraph(g *graph.Graph, wHat graph.W) *graph.Graph {
	if wHat <= 1 {
		if g.Weighted() {
			return g
		}
		// Promote an unweighted graph to an explicit unit-weight
		// graph so that augmented searches handle it uniformly.
		edges := make([]graph.Edge, len(g.Edges()))
		copy(edges, g.Edges())
		return graph.FromEdges(g.NumVertices(), edges, true)
	}
	edges := make([]graph.Edge, len(g.Edges()))
	copy(edges, g.Edges())
	for i := range edges {
		w := edges[i].W
		edges[i].W = (w + wHat - 1) / wHat
	}
	return graph.FromEdges(g.NumVertices(), edges, true)
}

// Augmented returns (and caches) Base ∪ all hopset edges, with true
// weights. Because hopset edges are real path weights, the augmented
// graph has exactly the same shortest-path metric as Base.
func (s *Scaled) Augmented() *graph.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aug != nil {
		return s.aug
	}
	base := s.Base.Edges()
	extra := s.Edges()
	all := make([]graph.Edge, 0, len(base)+len(extra))
	for _, e := range base {
		w := e.W
		if !s.Base.Weighted() {
			w = 1
		}
		all = append(all, graph.Edge{U: e.U, V: e.V, W: w})
	}
	all = append(all, extra...)
	s.aug = graph.FromEdges(s.Base.NumVertices(), all, true)
	return s.aug
}
