// Package hopset implements the paper's hopset constructions (Sections
// 4 and 5, Appendix C) and the baselines of Figure 2.
//
// A hopset for G = (V, E) is an extra edge set E' such that the h-hop
// distance in E ∪ E' approximates the true distance (Definition 2.4).
// Every hopset edge produced by this package carries the exact weight
// of a concrete path in G (property 2 of the definition), so adding
// hopset edges never shrinks distances — it only shrinks hop counts.
//
// The paper's construction (Algorithm 4) recursively applies
// exponential start time clustering with geometrically increasing β.
// Clusters holding at least a 1/ρ fraction of their subgraph are
// "large": each gets a star to its center, and large-cluster centers
// are pairwise connected with clique edges. Small clusters are
// recursed on. The parameters below control the recursion exactly as
// in Theorem 4.4.
package hopset

import (
	"fmt"
	"math"

	"repro/internal/exec"
)

// Params are the knobs of Algorithm 4 / Theorem 4.4.
//
// With β_0 = n^{-Gamma2}, n_final = n^{Gamma1}, and
// ρ = (K·ln(n)/Epsilon)^Delta, the paper proves the construction yields
// an (ε·log n, h, O(n))-hopset with h = n^{1 + 1/δ + γ1(1−1/δ) − γ2},
// built in O(n^{γ2} log² n log* n) depth and O(m·log^{1+δ} n·ε^{-δ})
// work.
type Params struct {
	// Epsilon is the per-level distortion parameter ε ∈ (0, 1); the
	// end-to-end distortion is O(ε · log_ρ n).
	Epsilon float64
	// Delta is δ > 1, the exponent separating the cluster-size decay
	// rate ρ from the β growth rate.
	Delta float64
	// Gamma1 sets the recursion base case n_final = n^{Gamma1}
	// (clamped below by MinFinal).
	Gamma1 float64
	// Gamma2 sets the top-level decomposition parameter
	// β_0 = n^{-Gamma2}; γ1 < γ2 < 1.
	Gamma2 float64
	// K is the success-probability constant of Lemma 2.1 (diameter
	// bound k·β^{-1}·log n holds with probability 1 − n^{1−k}).
	K float64
	// MinFinal is the smallest allowed base-case size; recursing
	// below a handful of vertices is pure overhead.
	MinFinal int
	// Seed drives all randomness.
	Seed uint64
	// Exec is the execution context the construction runs on: its
	// worker cap bounds the recursion fan-out, the clustering bucket
	// expansions, and the clique searches; its arenas back the mark
	// array and search scratch; its cancellation is polled at
	// recursion and band boundaries (a canceled build's result is
	// invalid — check Exec.Err()). A parallel context implies the
	// multicore construction exactly as Parallel did. Nil keeps legacy
	// behavior (Parallel decides, process-wide pool).
	Exec *exec.Ctx
	// Parallel runs the construction's hot loops on actual goroutines:
	// every clustering bucket expands concurrently and the
	// center-to-center clique searches use Δ-stepping instead of the
	// sequential Dial. The clustering — and hence the recursion tree,
	// star edges, and which center pairs get clique edges — is
	// bit-identical to the sequential build; clique edge weights may
	// differ within the same shortest-path metric when the rounded
	// graph admits several shortest trees (any raced path is a valid
	// Definition 2.4 edge).
	//
	// Deprecated: set Exec to a parallel execution context instead;
	// Parallel remains as a thin alias for Exec = exec.Default().
	Parallel bool
}

// exec resolves the effective execution context: an explicit Exec
// wins; otherwise the deprecated Parallel knob maps to the shared
// full-parallelism context, and false to legacy nil.
func (p Params) exec() *exec.Ctx {
	if p.Exec != nil {
		return p.Exec
	}
	if p.Parallel {
		return exec.Default()
	}
	return nil
}

// DefaultParams returns the parameter point used by most experiments:
// a mid-range γ2 so that laptop-scale graphs show both the depth
// reduction and the size bound (the paper's concrete example, γ2 =
// 0.96, δ = 1.1, only separates from the baselines at astronomically
// large n).
func DefaultParams(seed uint64) Params {
	return Params{
		Epsilon:  0.5,
		Delta:    1.5,
		Gamma1:   0.15,
		Gamma2:   0.5,
		K:        2,
		MinFinal: 8,
		Seed:     seed,
	}
}

// normalized validates and fills defaults.
func (p Params) normalized() Params {
	if p.Epsilon <= 0 || p.Epsilon >= 1 {
		panic(fmt.Sprintf("hopset: Epsilon = %v, want (0,1)", p.Epsilon))
	}
	if p.Delta <= 1 {
		panic(fmt.Sprintf("hopset: Delta = %v, want > 1", p.Delta))
	}
	if p.Gamma1 <= 0 || p.Gamma2 <= p.Gamma1 || p.Gamma2 >= 1 {
		panic(fmt.Sprintf("hopset: need 0 < Gamma1 < Gamma2 < 1, got %v, %v", p.Gamma1, p.Gamma2))
	}
	if p.K < 1 {
		p.K = 2
	}
	if p.MinFinal < 2 {
		p.MinFinal = 8
	}
	return p
}

// BetaStep returns the per-level β multiplier K·ε^{-1}·ln n
// (Claim 4.1: β_i = (K ε^{-1} log n)^i · β_0).
func (p Params) BetaStep(n int) float64 {
	if n < 3 {
		n = 3
	}
	return p.K * math.Log(float64(n)) / p.Epsilon
}

// Rho returns the large-cluster threshold divisor
// ρ = (K·ε^{-1}·ln n)^δ.
func (p Params) Rho(n int) float64 {
	return math.Pow(p.BetaStep(n), p.Delta)
}

// Beta0 returns the top-level decomposition parameter n^{-γ2}.
func (p Params) Beta0(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Pow(float64(n), -p.Gamma2)
}

// NFinal returns the base-case size max(MinFinal, n^{γ1}).
func (p Params) NFinal(n int) int {
	nf := int(math.Pow(float64(n), p.Gamma1))
	if nf < p.MinFinal {
		nf = p.MinFinal
	}
	return nf
}

// MaxLevels bounds the recursion depth log_ρ(n / n_final) with slack;
// the implementation enforces it as a safety net.
func (p Params) MaxLevels(n int) int {
	rho := p.Rho(n)
	if rho <= 1.0001 {
		return 64
	}
	l := int(math.Log(float64(n))/math.Log(rho)) + 8
	if l < 4 {
		l = 4
	}
	return l
}

// ExpectedHops returns the Lemma 4.2 hop bound
// h = n^{1/δ} · n_final^{1−1/δ} · β_0 · d for a distance-d pair.
func (p Params) ExpectedHops(n int, d float64) float64 {
	nf := float64(p.NFinal(n))
	return math.Pow(float64(n), 1/p.Delta) *
		math.Pow(nf, 1-1/p.Delta) * p.Beta0(n) * d
}

// ExpectedDistortion returns the Lemma 4.2 multiplicative distortion
// envelope 1 + O(ε·log_ρ n); the constant is the shortcut count per
// level times the diameter slack, ≤ 4K in the paper's proof.
func (p Params) ExpectedDistortion(n int) float64 {
	rho := p.Rho(n)
	levels := 1.0
	if rho > 1.0001 {
		levels = math.Log(float64(n)) / math.Log(rho)
		if levels < 1 {
			levels = 1
		}
	}
	return 1 + 4*p.K*p.Epsilon*levels
}
