package spanhop

import (
	"context"
	"time"

	"repro/internal/dynamic"
	"repro/internal/exec"
	"repro/internal/graph"
)

// This file is the facade over internal/dynamic: a DynamicOracle
// wraps a built DistanceOracle with a versioned delta-overlay so the
// served graph can absorb edge insertions, deletions, and reweights
// between rebuilds, and a background rebuild scheduler that folds the
// mutation journal into a from-scratch oracle (built through the
// internal/exec engine, cancelable) and atomically swaps generations.
// See internal/dynamic's package comment for the query algorithm and
// its approximation bound.

// DynamicUpdate is one requested mutation against a DynamicOracle.
type DynamicUpdate = dynamic.Update

// UpdateOp is a mutation kind.
type UpdateOp = dynamic.Op

// Mutation kinds: insert a currently-absent pair edge, delete a
// currently-present one, or change a present pair's weight.
const (
	UpdateInsert   = dynamic.OpInsert
	UpdateDelete   = dynamic.OpDelete
	UpdateReweight = dynamic.OpReweight
)

// ParseUpdateOp resolves the wire name of an op
// ("insert"/"delete"/"reweight").
func ParseUpdateOp(s string) (UpdateOp, error) { return dynamic.ParseOp(s) }

// Typed dynamic errors, re-exported for callers that switch on them.
var (
	// ErrBadUpdate wraps every mutation validation failure.
	ErrBadUpdate = dynamic.ErrBadUpdate
	// ErrCompactedGen reports a QueryAt generation already folded into
	// the base oracle by a rebuild.
	ErrCompactedGen = dynamic.ErrCompactedGen
	// ErrFutureGen reports a QueryAt generation not yet applied.
	ErrFutureGen = dynamic.ErrFutureGen
)

// RebuildPolicy tunes the DynamicOracle's background rebuild
// scheduler. Zero values take defaults; negative values disable the
// corresponding trigger.
type RebuildPolicy struct {
	// MaxJournal rebuilds once this many journal entries are pending
	// (default 256).
	MaxJournal int
	// MaxPatchFraction rebuilds once overlay pairs exceed this
	// fraction of the base edge count (default 0.10).
	MaxPatchFraction float64
	// MaxStaleness rebuilds once the oldest pending mutation is older
	// than this (default: disabled).
	MaxStaleness time.Duration
	// Workers caps the execution context rebuilds run on (0 =
	// GOMAXPROCS, 1 = the sequential reference build). Rebuilds are
	// always cancelable and arena-backed.
	Workers int
	// Disabled turns automatic rebuilds off entirely; only
	// ForceRebuild compacts the journal.
	Disabled bool
	// Labels, when non-nil, carries runtime/pprof profiler labels
	// (pprof.WithLabels) adopted by the pooled helper goroutines of
	// every rebuild's execution context, so rebuild CPU samples carry
	// the owning graph's identity. Only its label set is read.
	Labels context.Context
}

func (p RebuildPolicy) inner() dynamic.Policy {
	return dynamic.Policy{
		MaxJournal:       p.MaxJournal,
		MaxPatchFraction: p.MaxPatchFraction,
		MaxStaleness:     p.MaxStaleness,
	}
}

// baseAdapter exposes a DistanceOracle as the overlay's base Querier
// while keeping the full oracle reachable for introspection.
type baseAdapter struct{ o *DistanceOracle }

func (b baseAdapter) Query(s, t V) (Dist, error) { return b.o.Query(s, t) }

// DynamicOracle is a DistanceOracle that accepts live edge mutations.
// Queries reflect every applied update immediately (Query), or any
// pinned generation still in the journal window (QueryAt); the
// scheduler rebuilds the underlying static oracle in the background
// once the policy triggers and atomically swaps it in, after which
// answers exactly match a from-scratch oracle built on the mutated
// graph with the same eps and seed. All methods are safe for
// concurrent use.
type DynamicOracle struct {
	ov  *dynamic.Oracle
	sch *dynamic.Scheduler

	eps      float64
	seed     uint64
	disabled bool
}

// NewDynamicOracle wraps a built oracle. The oracle's graph, eps, and
// seed carry over; rebuilds reuse the same seed so a rebuilt oracle
// is reproducible from (mutated graph, eps, seed) alone.
func NewDynamicOracle(o *DistanceOracle, pol RebuildPolicy) *DynamicOracle {
	return newDynamicOracleAt(o, pol, 0)
}

// newDynamicOracleAt is NewDynamicOracle starting at an explicit base
// generation (snapshot restore).
func newDynamicOracleAt(o *DistanceOracle, pol RebuildPolicy, floor uint64) *DynamicOracle {
	d := &DynamicOracle{
		ov:       dynamic.New(baseAdapter{o}, o.Graph(), floor),
		eps:      o.Eps(),
		seed:     o.Seed(),
		disabled: pol.Disabled,
	}
	workers := pol.Workers
	// Rebuilt oracles must answer queries on the SAME execution
	// context the original oracle was configured with (e.g. the
	// server's query-worker cap), not the rebuild's build cap —
	// otherwise the first rebuild would silently change query fan-out.
	queryEc := o.queryEc
	d.sch = dynamic.NewScheduler(d.ov, pol.inner(),
		func(ctx context.Context, g *graph.Graph) (dynamic.Querier, error) {
			ec := exec.New(exec.Options{Context: ctx, Workers: workers, Labels: pol.Labels})
			no := NewDistanceOracleOpts(g, d.eps, d.seed, OracleOptions{
				Exec:      ec,
				QueryExec: queryEc,
			})
			if err := ec.Err(); err != nil {
				return nil, err
			}
			return baseAdapter{no}, nil
		})
	return d
}

// Oracle returns the current static base oracle (the freshly rebuilt
// one after a swap) — introspection only; queries must go through the
// DynamicOracle so pending mutations are honored.
func (d *DynamicOracle) Oracle() *DistanceOracle {
	return d.ov.Base().(baseAdapter).o
}

// Introspect returns the current static oracle and its base graph as
// one consistent pair (a rebuild swap replaces both together; calling
// Oracle() and Graph() separately could mix generations).
func (d *DynamicOracle) Introspect() (*DistanceOracle, *Graph) {
	base, g, _, _ := d.ov.PersistState()
	return base.(baseAdapter).o, g
}

// Gauges returns the overlay's observability gauges as one consistent
// snapshot (generation window, pending journal, overlay size,
// staleness clock).
func (d *DynamicOracle) Gauges() dynamic.Gauges { return d.ov.Gauges() }

// Graph returns the base graph of the current static oracle (the
// graph as of BaseGeneration; pending mutations are not
// materialized). Use MutatedGraph for the live view.
func (d *DynamicOracle) Graph() *Graph { return d.ov.BaseGraph() }

// MutatedGraph materializes the graph at the latest generation.
func (d *DynamicOracle) MutatedGraph() *Graph { return d.ov.MutatedGraph() }

// NumVertices returns the (fixed) vertex count.
func (d *DynamicOracle) NumVertices() int32 { return d.ov.BaseGraph().NumVertices() }

// Eps returns the accuracy parameter rebuilds preserve.
func (d *DynamicOracle) Eps() float64 { return d.eps }

// Generation returns the latest applied generation.
func (d *DynamicOracle) Generation() uint64 { return d.ov.Generation() }

// BaseGeneration returns the generation the current static oracle
// reflects; QueryAt accepts [BaseGeneration, Generation].
func (d *DynamicOracle) BaseGeneration() uint64 { return d.ov.FloorGen() }

// PendingUpdates returns the journal length awaiting a rebuild.
func (d *DynamicOracle) PendingUpdates() int { return d.ov.Pending() }

// OverlayEdges returns how many vertex pairs currently diverge from
// the base graph.
func (d *DynamicOracle) OverlayEdges() int { return d.ov.OverlayEdges() }

// Staleness returns the age of the oldest pending mutation (0 when
// the journal is empty).
func (d *DynamicOracle) Staleness() time.Duration {
	oldest := d.ov.OldestPending()
	if oldest.IsZero() {
		return 0
	}
	return time.Since(oldest)
}

// Journal returns a copy of the pending mutation journal
// (persistence; see SaveDynamicOracle).
func (d *DynamicOracle) Journal() []dynamic.Entry { return d.ov.Journal() }

// RebuildStats reports the scheduler's counters.
func (d *DynamicOracle) RebuildStats() dynamic.Stats { return d.sch.Snapshot() }

// RebuildEvent is one scheduler lifecycle notification (rebuild
// start / swap / fail); see SetRebuildObserver.
type RebuildEvent = dynamic.Event

// SetRebuildObserver registers a hook receiving every rebuild
// lifecycle event — the serving layer's observability turns these
// into structured log records and event counters. The hook runs on
// the rebuild goroutine and must be cheap and thread-safe.
func (d *DynamicOracle) SetRebuildObserver(f func(RebuildEvent)) { d.sch.SetOnEvent(f) }

// SetRebuildInstrument registers a wrapper around the expensive build
// step of every rebuild — the serving layer's cost accountant measures
// the wrapped section's CPU time and allocations and attributes them
// to the owning graph. The wrapper must call do() exactly once,
// synchronously (do returns the build's error); it runs on the rebuild
// goroutine.
func (d *DynamicOracle) SetRebuildInstrument(f func(cause string, do func() error)) {
	d.sch.SetInstrument(f)
}

// TraceInfo reports the overlay regime ("clean", "improving",
// "degrading") and the latest applied generation — the two facts a
// request trace pins so a slow query can be attributed to the overlay
// state it actually ran under.
func (d *DynamicOracle) TraceInfo() (regime string, gen uint64) { return d.ov.Regime() }

// ApplyUpdates applies a batch of mutations atomically (all or none),
// returning the generation of the last one. Each update is stamped
// with its own generation; the scheduler re-evaluates its policy
// afterwards and may start a background rebuild.
func (d *DynamicOracle) ApplyUpdates(us []DynamicUpdate) (uint64, error) {
	gen, err := d.ov.Apply(us)
	if err != nil {
		return 0, err
	}
	if !d.disabled {
		d.sch.Notify()
	}
	return gen, nil
}

// Query estimates the s-t distance on the latest generation's graph.
// See internal/dynamic for the bound: with only insertions and weight
// decreases pending the static (1±ε̃) envelope is preserved verbatim;
// with deletions or increases pending the answer is exact.
func (d *DynamicOracle) Query(s, t V) (Dist, error) { return d.ov.Query(s, t) }

// QueryAt is Query pinned at a generation in
// [BaseGeneration, Generation] — the optimistic-concurrency shape: a
// client that captured gen G can keep reading a consistent graph
// while writers advance, until a rebuild compacts G away
// (ErrCompactedGen).
func (d *DynamicOracle) QueryAt(gen uint64, s, t V) (Dist, error) {
	return d.ov.QueryAt(gen, s, t)
}

// ExactDistanceAt computes the exact s-t distance at a pinned
// generation via bidirectional Dijkstra over the patched adjacency —
// no hopset approximation on any path, in any regime. It is
// deliberately slower than Query (cost scales with the searched ball)
// and exists for answer auditing: the serving layer shadow-samples
// served answers and re-checks them against this ground truth.
// Returns ErrCompactedGen when a rebuild folded gen into the base.
func (d *DynamicOracle) ExactDistanceAt(gen uint64, s, t V) (Dist, error) {
	return d.ov.ExactDistanceAt(gen, s, t)
}

// StretchEnvelope returns the multiplicative answer envelope the
// current base oracle promises (see DistanceOracle.StretchEnvelope).
// The improving overlay regime preserves it verbatim; the degrading
// regime answers exactly (ratio 1 by construction).
func (d *DynamicOracle) StretchEnvelope() (lo, hi float64) {
	return d.Oracle().StretchEnvelope()
}

// QueryStats mirrors DistanceOracle.QueryStats. While the overlay is
// empty the full static diagnostics pass through; once mutations are
// pending the overlay path answers and Levels/Fallback read zero (the
// overlay search has no hopset depth to report).
func (d *DynamicOracle) QueryStats(s, t V) (QueryStats, error) {
	if d.ov.Pending() == 0 && d.ov.OverlayEdges() == 0 {
		return d.Oracle().QueryStats(s, t)
	}
	dist, err := d.ov.Query(s, t)
	if err != nil {
		return QueryStats{}, err
	}
	return QueryStats{Dist: dist}, nil
}

// QueryBatch answers many s-t queries, fanning them across the
// current base oracle's query execution context. Results are
// positionally aligned with pairs and identical to issuing each
// QueryStats sequentially; the first invalid pair by index order
// fails the whole batch.
func (d *DynamicOracle) QueryBatch(pairs [][2]V) ([]QueryStats, error) {
	out := make([]QueryStats, len(pairs))
	errs := make([]error, len(pairs))
	d.Oracle().queryEc.DoN(len(pairs), func(i int) {
		out[i], errs[i] = d.QueryStats(pairs[i][0], pairs[i][1])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SetOnRebuild registers a hook invoked after every completed rebuild
// swap, background or forced. The serving layer uses it to invalidate
// result caches (a swap changes answers within the envelope) and to
// rewrite the persisted snapshot.
func (d *DynamicOracle) SetOnRebuild(f func()) { d.sch.SetOnSwap(f) }

// ForceRebuild synchronously folds the pending journal into a fresh
// static oracle regardless of policy (waits out an in-flight
// background rebuild first). After it returns, BaseGeneration ==
// Generation as of the call and answers match a from-scratch oracle
// on MutatedGraph.
func (d *DynamicOracle) ForceRebuild(ctx context.Context) error {
	return d.sch.Force(ctx)
}

// Close cancels any in-flight rebuild and stops the scheduler. The
// oracle stays queryable; further ApplyUpdates still land in the
// journal but no automatic rebuild will absorb them.
func (d *DynamicOracle) Close() { d.sch.Close() }
