// Shortcut demo: a textual reproduction of Figure 3 of the paper.
//
// Figure 3 illustrates how an s-t shortest path interacts with one
// level of the hopset decomposition: the path enters large clusters,
// and the star + clique edges let it jump from the first vertex it
// has inside a large cluster (u) through that cluster's center (c1),
// across a clique edge to another center (c2), and back down to its
// last large-cluster vertex (v) — replacing a long stretch of the
// path with exactly three hopset edges.
//
// This program builds a long path graph with local noise, runs one
// EST clustering, designates large clusters, and prints which
// segments of the s-t path are shortcut through which centers —
// the mechanics behind Lemma 4.2's hop-count argument.
package main

import (
	"fmt"
	"strings"

	spanhop "repro"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	// A path 0..n-1 with a sprinkle of local chords, so the shortest
	// 0 -> n-1 route is essentially the path itself (like the curvy
	// s-t path of Figure 3).
	const n = 120
	r := rng.New(5)
	var edges []spanhop.Edge
	for i := int32(0); i+1 < n; i++ {
		edges = append(edges, spanhop.Edge{U: i, V: i + 1, W: 1})
	}
	for i := 0; i < 25; i++ {
		u := r.Int31n(n - 3)
		edges = append(edges, spanhop.Edge{U: u, V: u + 2 + r.Int31n(2), W: 1})
	}
	g := spanhop.NewGraph(n, graph.Simplify(edges), false)

	// One decomposition level with moderate beta.
	beta := 0.08
	clus := core.Cluster(g, beta, 11, core.Options{})
	fmt.Printf("EST clustering with beta=%.2f: %d clusters on %d vertices\n\n",
		beta, clus.NumClusters(), n)

	// Large clusters: at least a 1/rho fraction, as in Algorithm 4.
	rho := 4.0
	threshold := float64(n) / rho
	large := map[int32]bool{}
	for ci, cl := range clus.Clusters {
		if float64(len(cl)) >= threshold {
			large[int32(ci)] = true
		}
	}
	fmt.Printf("large clusters (>= n/rho = %.0f vertices):", threshold)
	for ci := range clus.Clusters {
		if large[int32(ci)] {
			fmt.Printf(" #%d(center=%d,size=%d)", ci, clus.Centers[ci], len(clus.Clusters[ci]))
		}
	}
	fmt.Println()

	// The s-t path and its cluster structure, rendered like Figure 3:
	// each path vertex tagged by its cluster; runs compressed.
	s, t := spanhop.V(0), spanhop.V(n-1)
	path := spanhop.ShortestPaths(g, s).PathTo(t)
	fmt.Printf("\ns-t path: %d vertices, %d hops\n", len(path), len(path)-1)

	var segs []string
	segStart := 0
	for i := 1; i <= len(path); i++ {
		if i == len(path) || clus.ClusterOf[path[i]] != clus.ClusterOf[path[segStart]] {
			ci := clus.ClusterOf[path[segStart]]
			tag := " "
			if large[ci] {
				tag = "L"
			}
			segs = append(segs, fmt.Sprintf("[c%d%s x%d]", ci, tag, i-segStart))
			segStart = i
		}
	}
	fmt.Printf("path through clusters (L = large): %s\n", strings.Join(segs, " - "))

	// Figure 3's shortcut: u = first path vertex in a large cluster,
	// v = last; replace everything between with u -> c(u) -> c(v) -> v.
	firstL, lastL := -1, -1
	for i, pv := range path {
		if large[clus.ClusterOf[pv]] {
			if firstL < 0 {
				firstL = i
			}
			lastL = i
		}
	}
	if firstL < 0 || firstL == lastL {
		fmt.Println("\nno multi-cluster shortcut on this seed; the recursion would handle it lower down")
		return
	}
	u, v := path[firstL], path[lastL]
	c1 := clus.Center[u]
	c2 := clus.Center[v]
	fmt.Printf("\nFigure 3 shortcut:\n")
	fmt.Printf("  u  = %3d (first path vertex in a large cluster, dist-to-center %d)\n", u, clus.DistToCenter[u])
	fmt.Printf("  c1 = %3d (its center; star edge u-c1)\n", c1)
	fmt.Printf("  c2 = %3d (center of the last large cluster; clique edge c1-c2)\n", c2)
	fmt.Printf("  v  = %3d (last path vertex in a large cluster; star edge c2-v)\n", v)
	replaced := lastL - firstL
	fmt.Printf("\nthe shortcut replaces %d path hops with 3 hopset edges;\n", replaced)
	fmt.Printf("the %d hops before u and %d after v fall into small clusters,\n", firstL, len(path)-1-lastL)
	fmt.Printf("which the hopset recursion shortcuts at the next level (Lemma 4.2).\n")
}
