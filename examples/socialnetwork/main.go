// Social network scenario: spanner sparsification of a skewed-degree
// graph.
//
// Social graphs are dense, low-diameter, and heavy-tailed — exactly
// where an O(k)-spanner pays off: a small multiplicative error on
// distances buys a dramatic edge-count reduction, which downstream
// analytics (reachability, community detection, visualization) run on
// instead of the full graph. We build an RMAT graph, sparsify it with
// the paper's EST spanner at several k, and compare against
// Baswana–Sen on size, cost, and realized stretch.
package main

import (
	"fmt"

	spanhop "repro"
	"repro/internal/eval"
)

func main() {
	// RMAT with the classic (0.57, 0.19, 0.19) parameters: 2^13
	// vertices, ~16 average degree, heavy-tailed.
	g := spanhop.RMATGraph(13, 1<<17, 1)
	var maxDeg int32
	for v := spanhop.V(0); v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("social graph: n=%d m=%d, max degree %d (mean %.1f)\n\n",
		g.NumVertices(), g.NumEdges(), maxDeg,
		float64(2*g.NumEdges())/float64(g.NumVertices()))

	fmt.Printf("%-4s %-22s %-10s %-8s %-10s %-10s %-12s\n",
		"k", "algorithm", "edges", "kept%", "work", "depth", "stretch(max)")
	for _, k := range []int{2, 3, 5, 8} {
		for _, algo := range []string{"est-spanner (ours)", "baswana-sen"} {
			cost := spanhop.NewCost()
			var res *spanhop.Spanner
			if algo == "est-spanner (ours)" {
				res = spanhop.UnweightedSpannerWithCost(g, k, uint64(k), cost)
			} else {
				res = spanhop.BaswanaSenSpannerWithCost(g, k, uint64(k), cost)
			}
			st := eval.SpannerStretch(g, res.EdgeIDs, 200, uint64(10*k))
			fmt.Printf("%-4d %-22s %-10d %-8.1f %-10d %-10d %-12.1f\n",
				k, algo, res.Size(),
				100*float64(res.Size())/float64(g.NumEdges()),
				cost.Work(), cost.Depth(), st.Max)
		}
	}

	fmt.Println("\nreading the table: ours keeps fewer edges at equal k (the size")
	fmt.Println("advantage of Theorem 1.1 over the k·n^(1+1/k) baselines) with O(m)")
	fmt.Println("work independent of k, trading a constant factor of stretch.")
}
