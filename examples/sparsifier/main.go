// Sparsifier scenario: the Koutis (SPAA 2014) spectral sparsification
// pipeline that Section 2.2 of the paper names as a direct application
// of its spanner routine.
//
// Spectral sparsifiers preserve the graph's Laplacian quadratic form —
// cuts, effective resistances, spectral clustering all keep working —
// while shrinking the edge count dramatically. Koutis' construction is
// a loop of exactly the paper's primitive: peel off a bundle of
// spanners, then keep each remaining edge with probability 1/2 at
// doubled weight. This example sparsifies a dense random graph and
// verifies the quadratic form on random test vectors.
package main

import (
	"fmt"

	spanhop "repro"
	"repro/internal/rng"
	"repro/internal/sparsify"
)

func main() {
	// Dense instance: sparsification pays when m ≫ n^{1+1/k}·t.
	g := spanhop.RandomGraph(2000, 300_000, 7)
	fmt.Printf("input: n=%d m=%d (avg degree %.0f)\n",
		g.NumVertices(), g.NumEdges(), float64(2*g.NumEdges())/float64(g.NumVertices()))

	cost := spanhop.NewCost()
	res := sparsify.Spectral(g, sparsify.Options{
		K: 6, BundleSize: 3, MaxRounds: 14, Seed: 8, Cost: cost,
	})
	fmt.Printf("sparsifier: %d edges (%.1f%% of input) after %d rounds; %d from spanner bundles\n",
		len(res.Edges), 100*float64(len(res.Edges))/float64(g.NumEdges()),
		res.Rounds, res.BundleEdges)
	fmt.Printf("cost: work=%d depth=%d\n\n", cost.Work(), cost.Depth())

	// Spectral check: x^T L x on random vectors.
	var base []spanhop.Edge
	for _, e := range g.Edges() {
		base = append(base, spanhop.Edge{U: e.U, V: e.V, W: 1})
	}
	r := rng.New(9)
	fmt.Println("Laplacian quadratic form on random vectors (ratio sparse/full):")
	worstLo, worstHi := 1.0, 1.0
	for trial := 0; trial < 8; trial++ {
		x := make([]float64, g.NumVertices())
		for i := range x {
			x[i] = r.Float64()*2 - 1
		}
		ratio := sparsify.QuadraticForm(res.Edges, x) / sparsify.QuadraticForm(base, x)
		fmt.Printf("  trial %d: %.4f\n", trial, ratio)
		if ratio < worstLo {
			worstLo = ratio
		}
		if ratio > worstHi {
			worstHi = ratio
		}
	}
	fmt.Printf("\nworst ratios: [%.4f, %.4f] — the quadratic form survives a %.0fx edge reduction\n",
		worstLo, worstHi, float64(g.NumEdges())/float64(len(res.Edges)))
}
