// Quickstart: the five-minute tour of the library — cluster a graph,
// sparsify it with a spanner, shortcut a high-diameter graph with a
// hopset, and answer approximate distance queries, with PRAM
// work/depth numbers for each step.
package main

import (
	"fmt"

	spanhop "repro"
)

func main() {
	// A dense unweighted random graph: 5000 vertices, 100k edges.
	g := spanhop.RandomGraph(5000, 100_000, 42)
	fmt.Printf("graph: n=%d m=%d (unweighted)\n", g.NumVertices(), g.NumEdges())

	// 1. Exponential start time clustering — the paper's key routine.
	// With beta = ln(n)/(2k), radii are O(k) whp (Lemma 2.1) and each
	// edge is cut with probability ~ln(n)/(2k) (Corollary 2.3).
	cost := spanhop.NewCost()
	clus := spanhop.ESTClusterWithCost(g, 0.42, 1, cost) // ln(5000)/(2*10)
	fmt.Printf("\nEST clustering (beta=0.42): %d clusters, max radius %d\n",
		clus.NumClusters(), clus.MaxRadius())
	fmt.Printf("  cost: work=%d, depth=%d rounds\n", cost.Work(), cost.Depth())

	// 2. An O(k)-stretch spanner with ~n^(1+1/k) edges (Theorem 1.1):
	// at k=3 that is ~n^1.33 ≈ 84k candidate envelope, and the
	// construction lands well under the input size.
	for _, k := range []int{2, 3, 5} {
		cost = spanhop.NewCost()
		sp := spanhop.UnweightedSpannerWithCost(g, k, 2, cost)
		fmt.Printf("\nspanner k=%d: %d of %d edges kept (%.1f%%), work=%d, depth=%d\n",
			k, sp.Size(), g.NumEdges(),
			100*float64(sp.Size())/float64(g.NumEdges()), cost.Work(), cost.Depth())
	}

	// 3. A hopset on a high-diameter graph: extra edges so that a few
	// Bellman-Ford rounds approximate true distances (Theorem 4.4).
	grid := spanhop.GridGraph(70, 70) // hop diameter 138
	p := spanhop.DefaultHopsetParams(3)
	p.Gamma2 = 0.6
	cost = spanhop.NewCost()
	hs := spanhop.BuildHopsetWithCost(grid, p, cost)
	fmt.Printf("\nhopset on 70x70 grid: %d edges (%d star + %d clique), work=%d, depth=%d\n",
		hs.Size(), hs.Stars, hs.Cliques, cost.Work(), cost.Depth())

	src := spanhop.V(0)
	exact := spanhop.ShortestPaths(grid, src)
	coverage := func(extra []spanhop.Edge, hops int) int {
		d := spanhop.HopLimitedDistances(grid, extra, src, hops)
		n := 0
		for v, dv := range d {
			if dv < spanhop.InfDist && float64(dv) <= 1.5*float64(exact.Dist[v]) {
				n++
			}
		}
		return n
	}
	for _, hops := range []int{10, 25, 50} {
		fmt.Printf("  %3d-hop coverage within 1.5x of exact: %4d vertices with hopset, %4d without\n",
			hops, coverage(hs.Edges, hops), coverage(nil, hops))
	}

	// 4. The end-to-end (1+eps) distance oracle of Theorem 1.2, on a
	// weighted version of the grid (weighted diameter ~50k).
	wg := spanhop.WithUniformWeights(grid, 1000, 5)
	oracle := spanhop.NewDistanceOracle(wg, 0.25, 6)
	s, t := spanhop.V(0), wg.NumVertices()-1
	st, err := oracle.QueryStats(s, t)
	if err != nil {
		panic(err)
	}
	truth := oracle.ExactDistance(s, t)
	fmt.Printf("\noracle corner-to-corner query: approx=%d exact=%d (ratio %.4f)\n",
		st.Dist, truth, float64(st.Dist)/float64(truth))
	fmt.Printf("  answered in %d parallel levels; plain weighted BFS would need %d\n",
		st.Levels, truth)
}
