// Road network scenario: the paper's motivating use case for hopsets.
//
// Road networks are high-diameter, low-degree graphs with travel-time
// weights — the worst case for level-synchronous parallel shortest
// path (depth = weighted diameter) and the best case for hopsets. We
// simulate a road network as a grid with perturbed travel times plus
// a few express "highways", preprocess it with the Section 5
// multi-scale hopset, and compare approximate route queries against
// exact Dijkstra: same answers within a few percent, at an order of
// magnitude fewer parallel levels.
package main

import (
	"fmt"

	spanhop "repro"
	"repro/internal/rng"
)

const (
	rows, cols = 60, 60
	maxTravel  = 600 // seconds per road segment
	highways   = 12
)

func buildRoadNetwork(seed uint64) *spanhop.Graph {
	r := rng.New(seed)
	id := func(rr, cc int32) spanhop.V { return rr*cols + cc }
	var edges []spanhop.Edge
	// Local roads: grid with heterogeneous travel times (city blocks
	// vs suburbs).
	for rr := int32(0); rr < rows; rr++ {
		for cc := int32(0); cc < cols; cc++ {
			w := func() spanhop.W { return 30 + r.Int63n(maxTravel) }
			if cc+1 < cols {
				edges = append(edges, spanhop.Edge{U: id(rr, cc), V: id(rr, cc+1), W: w()})
			}
			if rr+1 < rows {
				edges = append(edges, spanhop.Edge{U: id(rr, cc), V: id(rr+1, cc), W: w()})
			}
		}
	}
	// Highways: long-range links that are much faster per unit of
	// grid distance, like a motorway across town.
	for h := 0; h < highways; h++ {
		a := id(r.Int31n(rows), r.Int31n(cols))
		b := id(r.Int31n(rows), r.Int31n(cols))
		if a == b {
			continue
		}
		edges = append(edges, spanhop.Edge{U: a, V: b, W: 200 + r.Int63n(800)})
	}
	return spanhop.NewGraph(rows*cols, edges, true)
}

func main() {
	g := buildRoadNetwork(7)
	fmt.Printf("road network: n=%d intersections, m=%d segments, travel times %d..%d\n",
		g.NumVertices(), g.NumEdges(), g.MinWeight(), g.MaxWeight())

	// Preprocess once; gamma2=0.7 gives coarse top-level clusters
	// (few hops on long routes), the right trade for road networks.
	wp := spanhop.DefaultScaledHopsetParams(1)
	wp.Gamma2 = 0.7
	prep := spanhop.NewCost()
	hs := spanhop.BuildScaledHopsetWithCost(g, wp, prep)
	fmt.Printf("hopset: %d shortcut edges across %d distance bands\n", hs.Size(), len(hs.Scales))
	fmt.Printf("preprocessing: work=%d depth=%d\n\n", prep.Work(), prep.Depth())

	// Route queries: random origin/destination pairs.
	r := rng.New(99)
	fmt.Printf("%-14s %-10s %-10s %-8s %-13s %-13s\n",
		"route", "exact(s)", "approx(s)", "error", "query levels", "plain levels")
	var sumLevels, sumPlain, sumErr float64
	const trips = 8
	done := 0
	for done < trips {
		s := r.Int31n(g.NumVertices())
		t := r.Int31n(g.NumVertices())
		if s == t {
			continue
		}
		exact := hs.ExactDistance(s, t)
		if exact < 5000 { // only long trips carry signal
			continue
		}
		q := hs.Query(s, t, nil)
		errPct := 100 * (float64(q.Dist)/float64(exact) - 1)
		// Plain weighted parallel BFS needs `exact` levels.
		fmt.Printf("%4d -> %-6d %-10d %-10d %6.2f%%  %-13d %-13d\n",
			s, t, exact, q.Dist, errPct, q.Levels, exact)
		sumLevels += float64(q.Levels)
		sumPlain += float64(exact)
		sumErr += errPct
		done++
	}
	fmt.Printf("\nmean: %.2f%% error, %.0f query levels vs %.0f plain levels (%.1fx depth reduction)\n",
		sumErr/trips, sumLevels/trips, sumPlain/trips, sumPlain/sumLevels)
}
