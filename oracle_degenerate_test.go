package spanhop

// Degenerate DistanceOracle coverage: graphs NewDistanceOracle refuses
// to preprocess (n < 2 or no edges) must still answer queries with
// defined semantics — 0 on the diagonal, InfDist off it — through both
// Query and QueryBatch, and report themselves via the introspection
// accessors.

import "testing"

func TestDegenerateOracleEdgeless(t *testing.T) {
	g := NewGraph(4, nil, false)
	o := NewDistanceOracle(g, 0.25, 1)
	if !o.Degenerate() {
		t.Fatalf("edgeless oracle not marked degenerate")
	}
	if o.InstanceCount() != 0 {
		t.Fatalf("InstanceCount = %d, want 0", o.InstanceCount())
	}
	if o.HopsetSize() != 0 {
		t.Fatalf("HopsetSize = %d, want 0", o.HopsetSize())
	}
	if d, err := o.Query(0, 0); err != nil || d != 0 {
		t.Fatalf("Query(0,0) = (%d, %v), want (0, nil)", d, err)
	}
	for _, pair := range [][2]V{{0, 3}, {3, 0}, {1, 2}} {
		d, err := o.Query(pair[0], pair[1])
		if err != nil {
			t.Fatalf("Query(%d,%d) error: %v", pair[0], pair[1], err)
		}
		if d != InfDist {
			t.Fatalf("Query(%d,%d) = %d, want InfDist", pair[0], pair[1], d)
		}
	}
	if _, err := o.Query(0, 4); err == nil {
		t.Fatalf("Query(0,4) out of range: want error")
	}
	res, err := o.QueryBatch([][2]V{{0, 1}, {2, 2}, {3, 1}})
	if err != nil {
		t.Fatalf("QueryBatch error: %v", err)
	}
	want := []Dist{InfDist, 0, InfDist}
	for i, st := range res {
		if st.Dist != want[i] {
			t.Fatalf("QueryBatch[%d].Dist = %d, want %d", i, st.Dist, want[i])
		}
	}
}

func TestDegenerateOracleSingleVertex(t *testing.T) {
	g := NewGraph(1, nil, false)
	o := NewDistanceOracle(g, 0.5, 9)
	if !o.Degenerate() {
		t.Fatalf("single-vertex oracle not marked degenerate")
	}
	if d, err := o.Query(0, 0); err != nil || d != 0 {
		t.Fatalf("Query(0,0) = (%d, %v), want (0, nil)", d, err)
	}
	if _, err := o.Query(0, 1); err == nil {
		t.Fatalf("Query(0,1) out of range: want error")
	}
}

func TestOracleIntrospection(t *testing.T) {
	g := WithUniformWeights(RandomGraph(200, 600, 7), 50, 8)
	o := NewDistanceOracle(g, 0.3, 2)
	if o.Degenerate() {
		t.Fatalf("real oracle marked degenerate")
	}
	if o.Eps() != 0.3 {
		t.Fatalf("Eps = %v, want 0.3", o.Eps())
	}
	if o.NumVertices() != 200 {
		t.Fatalf("NumVertices = %d, want 200", o.NumVertices())
	}
	if o.InstanceCount() < 1 {
		t.Fatalf("InstanceCount = %d, want >= 1", o.InstanceCount())
	}
}

// TestOracleOptsParallelEquivalent: the Parallel build knob must not
// change any answer (it only moves the construction onto goroutines).
func TestOracleOptsParallelEquivalent(t *testing.T) {
	withProcs(t, 4, func() {
		g := WithUniformWeights(GridGraph(12, 12), 30, 3)
		seq := NewDistanceOracle(g, 0.3, 5)
		parl := NewDistanceOracleOpts(g, 0.3, 5, OracleOptions{Parallel: true})
		pairs := [][2]V{{0, 143}, {5, 77}, {11, 132}, {60, 61}}
		for _, p := range pairs {
			ds, err1 := seq.Query(p[0], p[1])
			dp, err2 := parl.Query(p[0], p[1])
			if err1 != nil || err2 != nil {
				t.Fatalf("query errors: %v / %v", err1, err2)
			}
			exact := seq.ExactDistance(p[0], p[1])
			for name, d := range map[string]Dist{"seq": ds, "par": dp} {
				lo := (1-0.3)*float64(exact) - 1e-9
				hi := 2.5 * float64(exact)
				if float64(d) < lo || float64(d) > hi {
					t.Fatalf("%s Query(%d,%d) = %d outside [%.0f, %.0f] (exact %d)",
						name, p[0], p[1], d, lo, hi, exact)
				}
			}
		}
	})
}
