package spanhop

// Differential coverage for the flat-arena (v3) snapshot format: an
// oracle opened from an arena — mapped from disk or sniffed out of a
// generic reader — must answer bit-identically to the pointer oracle
// it was frozen from, and a damaged arena must come back as ErrCorrupt,
// never a panic.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/snapshot"
)

// saveFlatFile freezes o into a v3 arena file and returns its path.
func saveFlatFile(t *testing.T, o *DistanceOracle) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "oracle.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveOracleFlat(f, o); err != nil {
		t.Fatalf("SaveOracleFlat: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFlatSnapshotDifferentialFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"er-unweighted", RandomGraph(220, 900, 7)},
		{"er-weighted", WithUniformWeights(RandomGraph(220, 900, 8), 40, 9)},
		{"rmat-unweighted", RMATGraph(7, 600, 10)},
		{"rmat-weighted", WithUniformWeights(RMATGraph(7, 600, 11), 25, 12)},
		{"grid-unweighted", GridGraph(12, 13)},
		{"grid-weighted", WithUniformWeights(GridGraph(12, 13), 30, 13)},
		{"er-multiscale-decomposed", WithMultiScaleWeights(RandomGraph(120, 480, 21), 10, 30, 22)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			o := NewDistanceOracle(tc.g, 0.3, 42)
			pairs := queryPairs(tc.g.NumVertices(), 30, 99)
			path := saveFlatFile(t, o)

			// Mapped open binding to the caller's resident graph (the
			// fingerprint fast path skips re-validating the embedded copy).
			mapped, _, err := OpenOracleFile(path, tc.g, OracleOptions{})
			if err != nil {
				t.Fatalf("OpenOracleFile: %v", err)
			}
			assertOracleEquivalent(t, tc.name+"/mapped", o, mapped, pairs)
			if flat, n := mapped.FlatInfo(); !flat || n <= 0 {
				t.Fatalf("FlatInfo = (%v, %d), want arena-backed", flat, n)
			}
			if flat, _ := o.FlatInfo(); flat {
				t.Fatal("built oracle claims to be arena-backed")
			}

			// Mapped open with no caller graph: the embedded copy is fully
			// validated and adopted.
			selfContained, _, err := OpenOracleFile(path, nil, OracleOptions{})
			if err != nil {
				t.Fatalf("OpenOracleFile(nil graph): %v", err)
			}
			assertOracleEquivalent(t, tc.name+"/embedded", o, selfContained, pairs)

			// The generic reader path: LoadOracle sniffs the v3 magic and
			// opens the arena from an in-memory buffer.
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			sniffed, err := LoadOracle(bytes.NewReader(data), tc.g, OracleOptions{})
			if err != nil {
				t.Fatalf("LoadOracle over arena bytes: %v", err)
			}
			assertOracleEquivalent(t, tc.name+"/sniffed", o, sniffed, pairs)
		})
	}
}

func TestFlatSnapshotDynamicRoundTrip(t *testing.T) {
	g := WithUniformWeights(RandomGraph(60, 150, 31), 20, 32)
	o := NewDistanceOracle(g, 0.25, 33)
	d := NewDynamicOracle(o, RebuildPolicy{Disabled: true})
	defer d.Close()
	if _, err := d.ApplyUpdates(mutationSequence(g, 8, 333)); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "dyn.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveDynamicOracleFlat(f, d, []byte("note")); err != nil {
		t.Fatalf("SaveDynamicOracleFlat: %v", err)
	}
	f.Close()

	// The static opener must refuse to drop the pending journal.
	if _, _, err := OpenOracleFile(path, nil, OracleOptions{}); err == nil {
		t.Fatal("OpenOracleFile accepted a journal-carrying arena")
	}
	d2, note, err := OpenDynamicOracleFile(path, g, OracleOptions{}, RebuildPolicy{Disabled: true})
	if err != nil {
		t.Fatalf("OpenDynamicOracleFile: %v", err)
	}
	defer d2.Close()
	if string(note) != "note" {
		t.Fatalf("note = %q", note)
	}
	if d2.Generation() != d.Generation() || d2.PendingUpdates() != d.PendingUpdates() {
		t.Fatalf("restored gen=%d pending=%d, want gen=%d pending=%d",
			d2.Generation(), d2.PendingUpdates(), d.Generation(), d.PendingUpdates())
	}
	for _, p := range queryPairs(g.NumVertices(), 30, 6) {
		a, err1 := d.Query(p[0], p[1])
		b, err2 := d2.Query(p[0], p[1])
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("(%d,%d): %d (%v) vs restored %d (%v)", p[0], p[1], a, err1, b, err2)
		}
	}
}

func TestFlatSnapshotCorruptArena(t *testing.T) {
	g := WithUniformWeights(GridGraph(8, 8), 9, 1)
	o := NewDistanceOracle(g, 0.3, 2)
	path := saveFlatFile(t, o)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	write := func(t *testing.T, b []byte) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), "bad.snap")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 3, len(data) / 3, len(data) - 1} {
			if _, _, err := OpenOracleFile(write(t, data[:n]), nil, OracleOptions{}); !errors.Is(err, snapshot.ErrCorrupt) {
				t.Fatalf("truncation to %d bytes: err = %v, want ErrCorrupt", n, err)
			}
		}
	})
	t.Run("bit-flipped", func(t *testing.T) {
		for _, at := range []int{16, len(data) / 2, len(data) - 5} {
			mut := append([]byte(nil), data...)
			mut[at] ^= 0x10
			if _, _, err := OpenOracleFile(write(t, mut), nil, OracleOptions{}); !errors.Is(err, snapshot.ErrCorrupt) {
				t.Fatalf("flip at %d: err = %v, want ErrCorrupt", at, err)
			}
		}
	})
	t.Run("sniffed-reader", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[len(mut)/2] ^= 0x10
		if _, err := LoadOracle(bytes.NewReader(mut), nil, OracleOptions{}); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("LoadOracle over flipped arena: err = %v, want ErrCorrupt", err)
		}
	})
}

func TestOpenOracleFileRejectsCodecStream(t *testing.T) {
	g := GridGraph(6, 6)
	o := NewDistanceOracle(g, 0.4, 8)
	path := filepath.Join(t.TempDir(), "codec.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveOracle(f, o); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, _, err = OpenOracleFile(path, g, OracleOptions{})
	if err == nil {
		t.Fatal("OpenOracleFile accepted a codec stream")
	}
	if !strings.Contains(err.Error(), "LoadOracle") {
		t.Fatalf("error %q does not direct the caller to LoadOracle", err)
	}
	// The codec file still loads fine through its own path.
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	back, err := LoadOracle(rf, g, OracleOptions{})
	if err != nil {
		t.Fatalf("LoadOracle: %v", err)
	}
	assertOracleEquivalent(t, "codec", o, back, queryPairs(g.NumVertices(), 20, 5))
}
