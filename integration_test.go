package spanhop

// Integration tests: compositions across subsystems that no single
// package exercises on its own.

import (
	"bytes"
	"testing"

	"repro/internal/distsim"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sparsify"
)

// TestSpannerThenOracle composes the two headline results: sparsify a
// weighted graph with the O(k)-spanner, then build the (1+ε) distance
// oracle on the spanner. Oracle answers on the spanner must be within
// the spanner's stretch envelope of the original graph's distances.
func TestSpannerThenOracle(t *testing.T) {
	g := WithUniformWeights(RandomGraph(800, 8000, 1), 20, 2)
	k := 3
	sp := WeightedSpanner(g, k, 3)
	h := sp.Graph(g)
	if h.NumEdges() >= g.NumEdges() {
		t.Fatal("spanner did not sparsify")
	}
	oracle := NewDistanceOracle(h, 0.25, 4)
	r := rng.New(5)
	for i := 0; i < 10; i++ {
		s := r.Int31n(g.NumVertices())
		u := r.Int31n(g.NumVertices())
		if s == u {
			continue
		}
		truth := ShortestPaths(g, s).Dist[u]
		approx, err := oracle.Query(s, u)
		if err != nil {
			t.Fatal(err)
		}
		// Lower bound: oracle on a subgraph can never undershoot the
		// full graph's distance by more than the decomposition ε (no
		// decomposition here: single scale weights).
		if approx < truth {
			t.Fatalf("oracle on spanner returned %d below true %d", approx, truth)
		}
		// Upper bound: spanner stretch O(k) times oracle (1+ε̃).
		if float64(approx) > float64(24*k)*float64(truth) {
			t.Fatalf("composed stretch too large: %d vs %d", approx, truth)
		}
	}
}

// TestSparsifyThenSpanner chains Koutis sparsification with a second
// spanner pass: the pipeline must keep shrinking the graph while
// preserving connectivity.
func TestSparsifyThenSpanner(t *testing.T) {
	g := RandomGraph(600, 18000, 6)
	sparse := sparsify.Spectral(g, sparsify.Options{K: 2, BundleSize: 2, MaxRounds: 8, Seed: 7})
	h := sparse.Graph(g.NumVertices())
	if h.NumEdges() >= g.NumEdges() {
		t.Fatal("sparsifier did not shrink")
	}
	sp := WeightedSpanner(h, 2, 8)
	if int64(sp.Size()) > h.NumEdges() {
		t.Fatal("spanner larger than input")
	}
	final := sp.Graph(h)
	if _, count := final.Components(); count != 1 {
		t.Fatal("pipeline disconnected the graph")
	}
}

// TestDistributedMatchesSharedMemorySize: the CONGEST-port spanner and
// the shared-memory spanner see the same clustering, so their sizes
// land in the same ballpark (selection rules differ slightly: weight
// vs id tie-breaks).
func TestDistributedMatchesSharedMemorySize(t *testing.T) {
	g := RandomGraph(300, 2400, 9)
	k := 3
	pairs, stats, err := distsim.DistributedSpanner(g, k, 11)
	if err != nil {
		t.Fatal(err)
	}
	shared := UnweightedSpanner(g, k, 11)
	lo, hi := shared.Size()/2, shared.Size()*2
	if len(pairs) < lo || len(pairs) > hi {
		t.Fatalf("distributed size %d far from shared-memory %d", len(pairs), shared.Size())
	}
	if stats.Rounds == 0 || stats.Messages == 0 {
		t.Fatal("no distributed activity recorded")
	}
}

// TestSerializationPipeline round-trips a graph through the on-disk
// format and verifies the seeded algorithms reproduce identical
// results on the reloaded copy.
func TestSerializationPipeline(t *testing.T) {
	g := WithMultiScaleWeights(RandomGraph(200, 1000, 12), 4, 8, 13)
	var buf bytes.Buffer
	if err := graph.WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := graph.ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := WeightedSpanner(g, 3, 14)
	b := WeightedSpanner(back, 3, 14)
	if a.Size() != b.Size() {
		t.Fatalf("spanner differs after round trip: %d vs %d", a.Size(), b.Size())
	}
	for i := range a.EdgeIDs {
		if a.EdgeIDs[i] != b.EdgeIDs[i] {
			t.Fatal("spanner edge ids differ after round trip")
		}
	}
}

// TestHopsetOnSpanner: hopsets compose with spanners — building the
// hopset on the spanner instead of the full graph preserves the hop
// reduction at a fraction of the edge budget (the paper's constructions
// are designed to stack this way).
func TestHopsetOnSpanner(t *testing.T) {
	g := GridGraph(36, 36)
	sp := UnweightedSpanner(g, 2, 15)
	h := sp.Graph(g)
	p := DefaultHopsetParams(16)
	p.Gamma2 = 0.6
	hs := BuildHopset(h, p)
	if hs.Size() == 0 {
		t.Fatal("no hopset on spanner")
	}
	// Hop count on the augmented spanner must beat plain BFS on the
	// original graph for a far pair (corner to corner).
	s, u := V(0), g.NumVertices()-1
	hops := eval.HopsForApprox(h, hs.Edges, s, u, 1.0)
	plain := eval.HopsForApprox(g, nil, s, u, 0.0)
	if hops <= 0 || plain <= 0 {
		t.Fatal("no hops measured")
	}
	if hops >= plain {
		t.Fatalf("hopset-on-spanner hops %d not below plain %d", hops, plain)
	}
}

// TestOracleAgreesWithHopLimited: the oracle's answer is always
// certified by some finite-hop path in the augmented graph.
func TestOracleAgreesWithHopLimited(t *testing.T) {
	g := WithUniformWeights(GridGraph(20, 20), 50, 17)
	o := NewDistanceOracle(g, 0.25, 18)
	r := rng.New(19)
	for i := 0; i < 6; i++ {
		s := r.Int31n(g.NumVertices())
		u := r.Int31n(g.NumVertices())
		if s == u {
			continue
		}
		approx, err := o.Query(s, u)
		if err != nil {
			t.Fatal(err)
		}
		exact := o.ExactDistance(s, u)
		if approx < exact || float64(approx) > 2.2*float64(exact) {
			t.Fatalf("oracle answer %d outside [exact, 2.2·exact] of %d", approx, exact)
		}
	}
}
