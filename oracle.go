package spanhop

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/flat"
	"repro/internal/hopset"
	"repro/internal/par"
	"repro/internal/wscale"
)

// DistanceOracle is the end-to-end Theorem 1.2 pipeline: preprocess a
// non-negatively weighted undirected graph so that (1+ε)-approximate
// s-t distances can be answered with low parallel depth.
//
// Preprocessing composes the paper's two reductions:
//
//  1. If the graph's weight ratio exceeds the polynomial bound the
//     Section 5 construction assumes, the Appendix B weight-class
//     decomposition splits it into instances of ratio O((n/ε)³),
//     losing at most an ε fraction of any queried distance
//     (Lemma 5.1).
//  2. Every instance gets a multi-scale hopset (Section 5): per
//     distance band, Klein–Subramanian rounding plus the Algorithm 4
//     EST-clustering recursion.
//
// Queries route through the decomposition to the right instance and
// run the level-capped weighted parallel BFS of the hopset query
// engine; answers are within [(1−ε)·d, (1+ε̃)·d] where ε̃ is the
// hopset construction's distortion envelope.
type DistanceOracle struct {
	g    *Graph
	eps  float64
	seed uint64

	// degenerate marks an oracle over a graph too small to route
	// (n < 2 or no edges): no hopset is built and every s ≠ t query
	// answers InfDist by definition rather than by zero-value
	// fallthrough.
	degenerate bool

	// Either direct (poly-bounded ratio) ...
	direct *hopset.Scaled
	// ... or decomposed: one scaled hopset per wscale instance.
	dec       *wscale.Decomposition
	instances []*hopset.Scaled

	// queryEc is the execution context queries run on: same worker
	// cap and arenas as the build context but detached from its
	// cancellation, because a query must never return a truncated
	// answer.
	queryEc *exec.Ctx

	// arena pins the flat-snapshot mapping this oracle's arrays alias
	// (OpenOracleFile); nil for built or codec-loaded oracles. The GC
	// does not trace mmap'd memory through the aliasing slices, so the
	// oracle itself must keep the mapping reachable.
	arena *flat.Mapping
}

// OracleOptions tune DistanceOracle preprocessing.
type OracleOptions struct {
	// Cost, when non-nil, accumulates the PRAM work/depth of the
	// preprocessing.
	Cost *Cost
	// Exec is the execution context the build runs on: worker cap,
	// scratch arenas, cancellation (polled at band/recursion/bucket
	// boundaries — a canceled build's oracle is invalid and must be
	// discarded after checking Exec.Err()), and per-stage telemetry.
	// Queries run on a detached copy that ignores the cancellation.
	// Nil keeps legacy behavior (Parallel decides the fan-out).
	Exec *ExecCtx
	// QueryExec overrides the execution context queries run on
	// (default: Exec.Detached()). The serving layer passes a
	// never-canceled parallel context here so that query throughput is
	// independent of the build's worker cap. It must never be
	// cancelable: queries have no notion of a partial answer.
	QueryExec *ExecCtx
	// Parallel runs the hopset construction's hot loops on actual
	// goroutines; the resulting oracle is equivalent, only the build
	// wall-clock changes.
	//
	// Deprecated: set Exec to a parallel execution context instead;
	// Parallel remains as a thin alias for Exec = exec.Default().
	Parallel bool
}

// NewDistanceOracle preprocesses g. eps ∈ (0, 1) controls both the
// decomposition loss and the hopset rounding.
func NewDistanceOracle(g *Graph, eps float64, seed uint64) *DistanceOracle {
	return NewDistanceOracleOpts(g, eps, seed, OracleOptions{})
}

// NewDistanceOracleWithCost is NewDistanceOracle with work/depth
// accounting of the preprocessing.
func NewDistanceOracleWithCost(g *Graph, eps float64, seed uint64, cost *Cost) *DistanceOracle {
	return NewDistanceOracleOpts(g, eps, seed, OracleOptions{Cost: cost})
}

// NewDistanceOracleOpts is NewDistanceOracle with explicit options
// (cost accounting, machine-parallel construction).
func NewDistanceOracleOpts(g *Graph, eps float64, seed uint64, opt OracleOptions) *DistanceOracle {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("spanhop: DistanceOracle eps = %v, want (0,1)", eps))
	}
	cost := opt.Cost
	ec := opt.Exec
	if ec == nil && opt.Parallel {
		ec = exec.Default()
	}
	queryEc := opt.QueryExec
	if queryEc == nil {
		queryEc = ec.Detached()
	}
	o := &DistanceOracle{g: g, eps: eps, seed: seed, queryEc: queryEc}
	wp := hopset.DefaultWeightedParams(seed)
	wp.Zeta = eps
	wp.Exec = ec
	wp.Parallel = opt.Parallel
	n := float64(g.NumVertices())
	if n < 2 || g.NumEdges() == 0 {
		o.degenerate = true
		return o
	}
	polyBound := math.Pow(n/eps, 3)
	if g.WeightRatio() <= polyBound {
		stop := ec.Stage("hopset-build", cost)
		o.direct = hopset.BuildScaled(g, wp, cost)
		stop()
		return o
	}
	stop := ec.Stage("wscale-decompose", cost)
	o.dec = wscale.Build(g, eps, cost)
	stop()
	// Instances are independent: side by side in the model.
	stop = ec.Stage("hopset-build", cost)
	costs := make([]*par.Cost, len(o.dec.Instances))
	o.instances = make([]*hopset.Scaled, len(o.dec.Instances))
	for i, inst := range o.dec.Instances {
		costs[i] = par.NewCost()
		if ec.Canceled() {
			break // the partial oracle is discarded by the Ctx owner
		}
		p := wp
		p.Seed = wp.Seed + uint64(i)*0x9e3779b97f4a7c15
		o.instances[i] = hopset.BuildScaled(inst.G, p, costs[i])
	}
	cost.JoinMax(costs...)
	stop()
	return o
}

// Decomposed reports whether the oracle needed the Appendix B
// weight-class decomposition.
func (o *DistanceOracle) Decomposed() bool { return o.dec != nil }

// Degenerate reports whether the graph was too small to preprocess
// (n < 2 or no edges); such oracles answer 0 for s == t and InfDist
// for every other in-range pair.
func (o *DistanceOracle) Degenerate() bool { return o.degenerate }

// Eps returns the accuracy parameter the oracle was built with.
func (o *DistanceOracle) Eps() float64 { return o.eps }

// Seed returns the seed the oracle was built (or restored) with.
func (o *DistanceOracle) Seed() uint64 { return o.seed }

// StretchEnvelope returns the multiplicative envelope [lo·d, hi·d]
// every answered distance provably lies in: lo = 1−ε from the
// Klein–Subramanian rounding floor, hi = (1+ε)·D(n) where D(n) is the
// hopset construction's per-level distortion compounded over the
// EST-clustering recursion depth (Lemma 4.2 via
// hopset.Params.ExpectedDistortion). The bound is the theorem's — in
// practice observed stretch concentrates far inside it; the serving
// layer's answer auditor alarms only when an answer escapes this
// envelope, because that can never happen in a correct build.
// Degenerate oracles answer exactly (0 or InfDist), so hi is 1.
func (o *DistanceOracle) StretchEnvelope() (lo, hi float64) {
	lo = 1 - o.eps
	if lo < 0 {
		lo = 0
	}
	if o.degenerate {
		return lo, 1
	}
	wp := hopset.DefaultWeightedParams(o.seed)
	wp.Zeta = o.eps
	hi = (1 + o.eps) * wp.Params.ExpectedDistortion(int(o.g.NumVertices()))
	if hi < 1 {
		hi = 1
	}
	return lo, hi
}

// Graph returns the base graph the oracle answers queries on. For a
// snapshot-restored oracle this is the caller-supplied graph when one
// was passed to LoadOracle, or the snapshot's embedded copy otherwise.
func (o *DistanceOracle) Graph() *Graph { return o.g }

// NumVertices returns the vertex count of the preprocessed graph
// (the valid query id range is [0, NumVertices)).
func (o *DistanceOracle) NumVertices() int32 { return o.g.NumVertices() }

// InstanceCount returns how many hopset instances back the oracle:
// 1 when the weight ratio was polynomially bounded (direct build),
// the number of Appendix B weight-class instances when decomposed,
// and 0 for a degenerate oracle.
func (o *DistanceOracle) InstanceCount() int {
	switch {
	case o.direct != nil:
		return 1
	case o.dec != nil:
		return len(o.instances)
	default:
		return 0
	}
}

// HopsetSize returns the total number of hopset edges across all
// instances.
func (o *DistanceOracle) HopsetSize() int {
	if o.direct != nil {
		return o.direct.Size()
	}
	total := 0
	for _, s := range o.instances {
		total += s.Size()
	}
	return total
}

// QueryStats carries the answer and the parallel cost of one query.
type QueryStats struct {
	// Dist is the distance estimate (InfDist when disconnected).
	Dist Dist
	// Levels is the query's parallel depth in synchronous rounds.
	Levels int64
	// Fallback reports whether the probabilistic search budget was
	// exhausted and the deterministic fallback answered.
	Fallback bool
}

// Query returns a (1±ε̃)-approximate s-t distance.
func (o *DistanceOracle) Query(s, t V) (Dist, error) {
	st, err := o.QueryStats(s, t)
	return st.Dist, err
}

// QueryStats is Query with cost diagnostics.
func (o *DistanceOracle) QueryStats(s, t V) (QueryStats, error) {
	n := o.g.NumVertices()
	if s < 0 || s >= n || t < 0 || t >= n {
		return QueryStats{}, fmt.Errorf("spanhop: query (%d,%d) out of range n=%d", s, t, n)
	}
	if s == t {
		return QueryStats{Dist: 0}, nil
	}
	if o.degenerate {
		// No edges (or a single vertex): distinct in-range vertices
		// are unreachable by definition.
		return QueryStats{Dist: InfDist}, nil
	}
	if o.direct != nil {
		q := o.direct.QueryOn(o.queryEc, s, t, nil)
		return QueryStats{Dist: q.Dist, Levels: q.Levels, Fallback: q.Fallback}, nil
	}
	inst, is, it := o.dec.InstanceFor(s, t)
	if inst == nil {
		return QueryStats{Dist: InfDist}, nil
	}
	if is == it {
		return QueryStats{Dist: 0}, nil
	}
	q := o.instances[inst.Level].QueryOn(o.queryEc, is, it, nil)
	return QueryStats{Dist: q.Dist, Levels: q.Levels, Fallback: q.Fallback}, nil
}

// QueryBatch answers many s-t queries, fanning them across the pooled
// workers (bounded by the oracle's execution context, or par.Workers()
// when it was built without one). The oracle is read-mostly after
// preprocessing — the only mutation is the mutex-guarded rounded-graph
// cache — so queries run concurrently without coordination; this is
// the serving shape of the Theorem 1.2 pipeline: preprocess once,
// answer query traffic in parallel. Results are positionally aligned
// with pairs and identical to issuing each Query sequentially. The
// first invalid pair reported by index order fails the whole batch.
func (o *DistanceOracle) QueryBatch(pairs [][2]V) ([]QueryStats, error) {
	out := make([]QueryStats, len(pairs))
	errs := make([]error, len(pairs))
	o.queryEc.DoN(len(pairs), func(i int) {
		out[i], errs[i] = o.QueryStats(pairs[i][0], pairs[i][1])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ExactDistance runs exact Dijkstra on the base graph (ground truth
// for tests and benchmarks).
func (o *DistanceOracle) ExactDistance(s, t V) Dist {
	res := ShortestPaths(o.g, s)
	return res.Dist[t]
}
