// Package spanhop is a from-scratch Go implementation of
//
//	Gary L. Miller, Richard Peng, Adrian Vladu, Shen Chen Xu:
//	"Improved Parallel Algorithms for Spanners and Hopsets", SPAA 2015.
//
// It provides exponential start time (EST) clustering, the paper's
// O(k)-stretch spanner constructions for unweighted and weighted
// graphs, its hopset constructions (single-scale, multi-scale weighted
// with Klein–Subramanian rounding, and the low-depth Appendix C
// variant), the Appendix B weight-class decomposition, the baselines
// the paper compares against (Baswana–Sen and greedy spanners, the
// KS97 √n hopset, a Cohen-style hierarchy hopset), and a PRAM
// work/depth cost model in which all of the paper's complexity claims
// are measured.
//
// This package is the public facade: it re-exports the core types and
// wires the end-to-end (1+ε)-approximate shortest-path pipeline of
// Theorem 1.2 as DistanceOracle. The implementation lives in the
// internal packages (internal/core is the clustering at the heart of
// everything; see DESIGN.md for the full inventory).
//
// # Quick start
//
//	g := spanhop.RandomGraph(10_000, 40_000, 42)
//	sp := spanhop.UnweightedSpanner(g, 3, 1)      // O(k)-stretch spanner
//	oracle := spanhop.NewDistanceOracle(g, 0.25, 2)
//	d, _ := oracle.Query(0, 9_999)                 // (1±ε) distance
package spanhop

import (
	"context"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/par"
	"repro/internal/spanner"
	"repro/internal/sssp"
)

// Re-exported fundamental types. Vertices are int32 ids, weights are
// positive int64, InfDist marks unreachable.
type (
	// Graph is an immutable undirected graph in CSR form.
	Graph = graph.Graph
	// Edge is one undirected edge (endpoints and weight).
	Edge = graph.Edge
	// V is the vertex id type.
	V = graph.V
	// W is the edge weight type.
	W = graph.W
	// Dist is the path distance type.
	Dist = graph.Dist
	// Cost accumulates PRAM work and depth for a computation.
	Cost = par.Cost
	// Clustering is the result of EST clustering: per-vertex centers,
	// spanning trees, and cluster groupings.
	Clustering = core.Result
	// Spanner is a spanner construction result (edge-id subset).
	Spanner = spanner.Result
	// Hopset is a single-scale hopset construction result.
	Hopset = hopset.Result
	// HopsetParams are the Algorithm 4 / Theorem 4.4 knobs.
	HopsetParams = hopset.Params
	// ScaledHopset is the queryable multi-scale hopset of Section 5.
	ScaledHopset = hopset.Scaled
	// ScaledHopsetParams extend HopsetParams with the Section 5
	// band/rounding knobs.
	ScaledHopsetParams = hopset.WeightedParams
	// PathResult holds per-vertex distances and parents of a search.
	PathResult = sssp.Result
	// ExecCtx is the unified execution context (internal/exec): a
	// pooled-worker cap, scratch arenas, cancellation, and per-stage
	// telemetry shared by every layer. Pass nil for legacy behavior.
	ExecCtx = exec.Ctx
	// ExecTelemetry accumulates per-stage build statistics.
	ExecTelemetry = exec.Telemetry
	// ExecStageStats is one telemetry stage snapshot.
	ExecStageStats = exec.StageStats
)

// InfDist is the "unreachable" distance sentinel.
const InfDist = graph.InfDist

// NewCost returns a fresh work/depth accumulator. Pass it to the
// *WithCost variants (or nil to skip accounting).
func NewCost() *Cost { return par.NewCost() }

// NewExecCtx builds an execution context: ctx supplies cancellation
// (nil = never canceled), workers caps the pooled fan-out (0 =
// GOMAXPROCS, 1 = sequential). Every build and search routed through
// the context reuses arena scratch buffers and aborts at the next
// round boundary once ctx is canceled.
func NewExecCtx(ctx context.Context, workers int) *ExecCtx {
	return exec.New(exec.Options{Context: ctx, Workers: workers})
}

// SequentialExec returns a never-canceled workers=1 context: the
// reference-oracle execution shape, but allocation-free on repeated
// calls thanks to the arenas.
func SequentialExec() *ExecCtx { return exec.Sequential() }

// ParallelExec returns a never-canceled context capped at workers
// pooled goroutines (0 = GOMAXPROCS).
func ParallelExec(workers int) *ExecCtx { return exec.Parallel(workers) }

// ---------------------------------------------------------------------------
// Graph construction.

// NewGraph builds an undirected graph over n vertices from an edge
// list. Pass weighted=false to ignore weights (unit lengths).
func NewGraph(n V, edges []Edge, weighted bool) *Graph {
	return graph.FromEdges(n, edges, weighted)
}

// RandomGraph returns a connected Erdős–Rényi style graph with n
// vertices and m edges (m ≥ n−1), deterministic in seed.
func RandomGraph(n V, m int64, seed uint64) *Graph {
	return graph.RandomConnectedGNM(n, m, seed)
}

// GridGraph returns the rows×cols grid — the high-diameter family
// where hopsets matter most.
func GridGraph(rows, cols V) *Graph { return graph.Grid2D(rows, cols) }

// RMATGraph returns a recursive-matrix random graph with 2^scale
// vertices and ~m edges using the classic skew parameters — a
// social-network stand-in with heavy-tailed degrees.
func RMATGraph(scale int, m int64, seed uint64) *Graph {
	return graph.RMAT(scale, m, 0.57, 0.19, 0.19, seed)
}

// WithUniformWeights attaches i.i.d. uniform integer weights in
// [1, maxW] to a graph.
func WithUniformWeights(g *Graph, maxW W, seed uint64) *Graph {
	return graph.UniformWeights(g, maxW, seed)
}

// WithMultiScaleWeights attaches weights spanning base^scales — the
// regime that exercises the weighted spanner bucketing and the
// Appendix B decomposition.
func WithMultiScaleWeights(g *Graph, base, scales float64, seed uint64) *Graph {
	return graph.ExponentialWeights(g, base, scales, seed)
}

// ---------------------------------------------------------------------------
// Exponential start time clustering (the paper's §2.1 key routine).

// ESTCluster partitions g into clusters using exponential start time
// clustering with parameter beta: every vertex joins the cluster of
// the vertex u maximizing δ_u − dist(u, v), δ_u ~ Exp(beta). Cluster
// radii are O(β^{-1} log n) with high probability (Lemma 2.1) and
// every edge is cut with probability ≤ β·w(e) (Corollary 2.3).
func ESTCluster(g *Graph, beta float64, seed uint64) *Clustering {
	return core.Cluster(g, beta, seed, core.Options{})
}

// ESTClusterWithCost is ESTCluster with work/depth accounting.
func ESTClusterWithCost(g *Graph, beta float64, seed uint64, cost *Cost) *Clustering {
	return core.Cluster(g, beta, seed, core.Options{Cost: cost})
}

// ESTClusterParallel is ESTCluster with every bucket of the race
// expanded by concurrent goroutines — the multicore realization of the
// CRCW frontier step. The clustering returned is bit-identical to
// ESTCluster's for the same seed; only the wall-clock changes.
func ESTClusterParallel(g *Graph, beta float64, seed uint64, cost *Cost) *Clustering {
	return core.Cluster(g, beta, seed, core.Options{Cost: cost, Parallel: true})
}

// ESTClusterOn is ESTCluster on an execution context: the race runs
// under ec's worker cap with arena-backed scratch and aborts at the
// next bucket once ec is canceled (check ec.Err() before using the
// result). Output is bit-identical to ESTCluster for any ec.
func ESTClusterOn(g *Graph, beta float64, seed uint64, ec *ExecCtx, cost *Cost) *Clustering {
	return core.Cluster(g, beta, seed, core.Options{Cost: cost, Exec: ec})
}

// ---------------------------------------------------------------------------
// Spanners (§3).

// UnweightedSpanner builds an O(k)-stretch spanner of expected size
// O(n^{1+1/k}) in O(m) work (Algorithm 2 / Lemma 3.2 / Theorem 1.1).
func UnweightedSpanner(g *Graph, k int, seed uint64) *Spanner {
	return spanner.Unweighted(g, k, seed, nil)
}

// UnweightedSpannerWithCost is UnweightedSpanner with accounting.
func UnweightedSpannerWithCost(g *Graph, k int, seed uint64, cost *Cost) *Spanner {
	return spanner.Unweighted(g, k, seed, cost)
}

// UnweightedSpannerParallel is UnweightedSpanner with the clustering
// race and boundary sweep on goroutines; the edge set is identical to
// the sequential construction for the same seed.
func UnweightedSpannerParallel(g *Graph, k int, seed uint64, cost *Cost) *Spanner {
	return spanner.UnweightedOpts(g, k, seed, spanner.Options{Cost: cost, Parallel: true})
}

// WeightedSpanner builds an O(k)-stretch spanner of expected size
// O(n^{1+1/k} log k) for weighted graphs (Theorem 3.3): power-of-two
// weight buckets dealt into O(log k) well-separated groups, each
// processed by hierarchical contraction (Algorithm 3).
func WeightedSpanner(g *Graph, k int, seed uint64) *Spanner {
	return spanner.Weighted(g, k, seed, nil)
}

// WeightedSpannerWithCost is WeightedSpanner with accounting.
func WeightedSpannerWithCost(g *Graph, k int, seed uint64, cost *Cost) *Spanner {
	return spanner.Weighted(g, k, seed, cost)
}

// WeightedSpannerParallel is WeightedSpanner with the O(log k)
// well-separated groups, their clustering races, and boundary sweeps
// all running on goroutines; same edge set as WeightedSpanner.
func WeightedSpannerParallel(g *Graph, k int, seed uint64, cost *Cost) *Spanner {
	return spanner.WeightedOpts(g, k, seed, spanner.Options{Cost: cost, Parallel: true})
}

// UnweightedSpannerOn is UnweightedSpanner on an execution context
// (worker cap, arenas, cancellation); same edge set for any ec.
func UnweightedSpannerOn(g *Graph, k int, seed uint64, ec *ExecCtx, cost *Cost) *Spanner {
	return spanner.UnweightedOpts(g, k, seed, spanner.Options{Cost: cost, Exec: ec})
}

// WeightedSpannerOn is WeightedSpanner on an execution context
// (worker cap, arenas, cancellation); same edge set for any ec.
func WeightedSpannerOn(g *Graph, k int, seed uint64, ec *ExecCtx, cost *Cost) *Spanner {
	return spanner.WeightedOpts(g, k, seed, spanner.Options{Cost: cost, Exec: ec})
}

// BaswanaSenSpanner builds the (2k−1)-stretch baseline spanner of
// Baswana and Sen [BS07] (Figure 1 comparison row).
func BaswanaSenSpanner(g *Graph, k int, seed uint64) *Spanner {
	return spanner.BaswanaSen(g, k, seed, nil)
}

// BaswanaSenSpannerWithCost is BaswanaSenSpanner with accounting.
func BaswanaSenSpannerWithCost(g *Graph, k int, seed uint64, cost *Cost) *Spanner {
	return spanner.BaswanaSen(g, k, seed, cost)
}

// GreedySpanner builds the greedy (2k−1)-spanner of Althöfer et al.
// [ADD+93]: smallest sizes, O(m·n)-ish work; small inputs only.
func GreedySpanner(g *Graph, k int) *Spanner {
	return spanner.Greedy(g, k, nil)
}

// ---------------------------------------------------------------------------
// Hopsets (§4, §5, Appendix C).

// DefaultHopsetParams returns the experiment-default Algorithm 4
// parameters.
func DefaultHopsetParams(seed uint64) HopsetParams { return hopset.DefaultParams(seed) }

// DefaultScaledHopsetParams returns the experiment-default Section 5
// parameters.
func DefaultScaledHopsetParams(seed uint64) ScaledHopsetParams {
	return hopset.DefaultWeightedParams(seed)
}

// BuildHopset runs Algorithm 4 once on g (any integer weights),
// returning hopset edges whose weights are exact path weights in g.
func BuildHopset(g *Graph, p HopsetParams) *Hopset {
	return hopset.Build(g, p, nil)
}

// BuildHopsetWithCost is BuildHopset with accounting.
func BuildHopsetWithCost(g *Graph, p HopsetParams, cost *Cost) *Hopset {
	return hopset.Build(g, p, cost)
}

// BuildScaledHopset constructs the queryable multi-scale hopset of
// Section 5 (per-band Klein–Subramanian rounding plus Algorithm 4).
func BuildScaledHopset(g *Graph, p ScaledHopsetParams) *ScaledHopset {
	return hopset.BuildScaled(g, p, nil)
}

// BuildScaledHopsetWithCost is BuildScaledHopset with accounting.
func BuildScaledHopsetWithCost(g *Graph, p ScaledHopsetParams, cost *Cost) *ScaledHopset {
	return hopset.BuildScaled(g, p, cost)
}

// KS97Hopset builds the √n-sampling exact hopset baseline [KS97/SS99]
// (Figure 2 comparison row).
func KS97Hopset(g *Graph, seed uint64) *Hopset {
	return hopset.KS97(g, seed, nil)
}

// CohenStyleHopset builds the hierarchical-sampling hopset standing in
// for Cohen's construction [Coh00] (Figure 2 comparison row; see
// DESIGN.md for the substitution note).
func CohenStyleHopset(g *Graph, levels int, seed uint64) *Hopset {
	return hopset.CohenStyle(g, levels, seed, nil)
}

// LimitedHopset runs the Appendix C iterated scheme targeting query
// depth Õ(n^alpha) with distortion ≤ (1+eps·polylog).
func LimitedHopset(g *Graph, alpha, eps float64, seed uint64) *Hopset {
	return hopset.Limited(g, alpha, eps, seed, nil)
}

// ---------------------------------------------------------------------------
// Searches.

// ShortestPaths runs exact Dijkstra from src (the sequential
// reference).
func ShortestPaths(g *Graph, src V) *PathResult {
	return sssp.Dijkstra(g, []V{src}, sssp.Options{})
}

// ParallelBFS runs level-synchronous BFS from src over unit edge
// costs, recording one depth unit per level in cost (may be nil).
func ParallelBFS(g *Graph, src V, cost *Cost) *PathResult {
	return sssp.BFS(g, []V{src}, sssp.Options{Cost: cost})
}

// ConcurrentBFS is ParallelBFS with the frontier expanded by actual
// goroutines (CAS-claimed vertices, the arbitrary-CRCW semantics);
// distances equal ParallelBFS's, wall-clock scales with GOMAXPROCS.
func ConcurrentBFS(g *Graph, src V, cost *Cost) *PathResult {
	return sssp.BFSParallel(g, []V{src}, sssp.Options{Cost: cost})
}

// WeightedParallelBFS runs the Dial bucket-queue search from src —
// exact for integer weights, with depth equal to the distance range
// swept (the quantity Section 5's rounding shrinks).
func WeightedParallelBFS(g *Graph, src V, cost *Cost) *PathResult {
	return sssp.Dial(g, []V{src}, sssp.Options{Cost: cost})
}

// WeightedParallelBFSOn is WeightedParallelBFS on an execution
// context: result and scratch arrays come from ec's arenas (release
// with PathResult.Release), and a canceled ec aborts the sweep at the
// next distance level.
func WeightedParallelBFSOn(g *Graph, src V, ec *ExecCtx, cost *Cost) *PathResult {
	return sssp.Dial(g, []V{src}, sssp.Options{Cost: cost, Exec: ec})
}

// ParallelShortestPaths runs Δ-stepping from src with the frontier
// expanded by concurrent goroutines and CAS-claimed relaxations — the
// weighted counterpart of ConcurrentBFS. Distances are exact and
// bit-identical to ShortestPaths; wall-clock scales with GOMAXPROCS.
func ParallelShortestPaths(g *Graph, src V, cost *Cost) *PathResult {
	return sssp.DeltaStepping(g, []V{src}, sssp.Options{Cost: cost, Parallel: true})
}

// ParallelShortestPathsOn is ParallelShortestPaths on an execution
// context: the frontier fan-out honors ec's worker cap and the O(n)
// result and scratch arrays come from its arenas. Release the result
// with PathResult.Release(ec) once consumed to make repeated searches
// allocation-free. Distances remain bit-identical to ShortestPaths.
func ParallelShortestPathsOn(g *Graph, src V, ec *ExecCtx, cost *Cost) *PathResult {
	return sssp.DeltaStepping(g, []V{src}, sssp.Options{Cost: cost, Exec: ec})
}

// HopLimitedDistances returns dist^h_{E∪extra}(src, ·): the h-hop
// limited distances of Definition 2.4, via h Bellman–Ford rounds.
func HopLimitedDistances(g *Graph, extra []Edge, src V, hops int) []Dist {
	return sssp.HopLimited(g, extra, []V{src}, hops, nil)
}

// ParallelHopLimitedDistances is HopLimitedDistances with every
// Bellman–Ford round scanned by concurrent goroutines (CAS min-update
// relaxations); the output is bit-identical.
func ParallelHopLimitedDistances(g *Graph, extra []Edge, src V, hops int) []Dist {
	return sssp.HopLimitedParallel(g, extra, []V{src}, hops, nil)
}
