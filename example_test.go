package spanhop_test

// Godoc examples for the public facade: each compiles, runs, and has
// its output verified by `go test`.

import (
	"fmt"

	spanhop "repro"
)

// ExampleESTCluster shows the paper's key routine: with β = ln(n)/(2k)
// the clusters have radius O(k) with high probability.
func ExampleESTCluster() {
	g := spanhop.GridGraph(16, 16)
	clus := spanhop.ESTCluster(g, 0.5, 7)
	fmt.Println("clusters:", clus.NumClusters() > 1)
	fmt.Println("radius bounded:", clus.MaxRadius() <= 12)
	// Output:
	// clusters: true
	// radius bounded: true
}

// ExampleUnweightedSpanner builds an O(k)-stretch spanner and shows it
// sparsifies a dense graph.
func ExampleUnweightedSpanner() {
	g := spanhop.RandomGraph(1000, 20000, 42)
	sp := spanhop.UnweightedSpanner(g, 3, 1)
	fmt.Println("sparsified:", int64(sp.Size()) < g.NumEdges())
	fmt.Println("spans graph:", func() bool {
		h := sp.Graph(g)
		_, c := h.Components()
		return c == 1
	}())
	// Output:
	// sparsified: true
	// spans graph: true
}

// ExampleBuildHopset shows hop reduction: with the hopset, a few
// Bellman–Ford rounds reach a far vertex near-optimally.
func ExampleBuildHopset() {
	g := spanhop.GridGraph(30, 30) // corner-to-corner distance 58
	p := spanhop.DefaultHopsetParams(3)
	p.Gamma2 = 0.6
	hs := spanhop.BuildHopset(g, p)
	far := g.NumVertices() - 1
	exact := spanhop.ShortestPaths(g, 0).Dist[far]
	with := spanhop.HopLimitedDistances(g, hs.Edges, 0, 10)[far]
	without := spanhop.HopLimitedDistances(g, nil, 0, 10)[far]
	fmt.Println("exact distance:", exact)
	fmt.Println("10 hops with hopset near-exact:", float64(with) <= 1.5*float64(exact))
	fmt.Println("10 hops without hopset reaches:", without < spanhop.InfDist)
	// Output:
	// exact distance: 58
	// 10 hops with hopset near-exact: true
	// 10 hops without hopset reaches: false
}

// ExampleNewDistanceOracle runs the end-to-end Theorem 1.2 pipeline.
func ExampleNewDistanceOracle() {
	g := spanhop.WithUniformWeights(spanhop.GridGraph(20, 20), 100, 5)
	oracle := spanhop.NewDistanceOracle(g, 0.25, 6)
	approx, err := oracle.Query(0, g.NumVertices()-1)
	exact := oracle.ExactDistance(0, g.NumVertices()-1)
	fmt.Println("err:", err)
	fmt.Println("sound:", approx >= exact)
	fmt.Println("tight:", float64(approx) <= 1.5*float64(exact))
	// Output:
	// err: <nil>
	// sound: true
	// tight: true
}

// ExampleParallelShortestPaths shows the multicore Δ-stepping SSSP:
// distances are bit-identical to the sequential Dijkstra reference
// while the frontier expands on goroutines.
func ExampleParallelShortestPaths() {
	g := spanhop.WithUniformWeights(spanhop.GridGraph(40, 40), 9, 3)
	par := spanhop.ParallelShortestPaths(g, 0, nil)
	seq := spanhop.ShortestPaths(g, 0)
	same := true
	for v := range par.Dist {
		if par.Dist[v] != seq.Dist[v] {
			same = false
		}
	}
	fmt.Println("matches Dijkstra:", same)
	fmt.Println("far corner reached:", par.Reached(g.NumVertices()-1))
	// Output:
	// matches Dijkstra: true
	// far corner reached: true
}

// ExampleDistanceOracle_QueryBatch serves a batch of (1+ε)-approximate
// distance queries, fanned across goroutines after one preprocessing.
func ExampleDistanceOracle_QueryBatch() {
	g := spanhop.WithUniformWeights(spanhop.GridGraph(20, 20), 50, 5)
	oracle := spanhop.NewDistanceOracle(g, 0.25, 6)
	pairs := [][2]spanhop.V{
		{0, g.NumVertices() - 1},
		{0, 19},
		{5, 5},
	}
	stats, err := oracle.QueryBatch(pairs)
	fmt.Println("err:", err)
	sound := true
	for i, st := range stats {
		if st.Dist < oracle.ExactDistance(pairs[i][0], pairs[i][1]) {
			sound = false
		}
	}
	fmt.Println("answers:", len(stats))
	fmt.Println("all sound:", sound)
	fmt.Println("self query:", stats[2].Dist)
	// Output:
	// err: <nil>
	// answers: 3
	// all sound: true
	// self query: 0
}

// ExampleNewCost shows PRAM work/depth accounting.
func ExampleNewCost() {
	g := spanhop.GridGraph(32, 32)
	cost := spanhop.NewCost()
	spanhop.ParallelBFS(g, 0, cost)
	// BFS from a corner: one round per level, 62 levels + final.
	fmt.Println("depth:", cost.Depth())
	fmt.Println("work >= edges:", cost.Work() >= g.NumEdges())
	// Output:
	// depth: 63
	// work >= edges: true
}
