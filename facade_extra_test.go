package spanhop

// Additional facade coverage: constructors and variants not exercised
// by the main flow tests.

import (
	"testing"
)

func TestRMATGraphFacade(t *testing.T) {
	g := RMATGraph(8, 1000, 3)
	if g.NumVertices() != 256 {
		t.Fatalf("n = %d, want 256", g.NumVertices())
	}
	if g.NumEdges() < 800 {
		t.Fatalf("m = %d, too few", g.NumEdges())
	}
}

func TestGridGraphFacade(t *testing.T) {
	g := GridGraph(5, 8)
	if g.NumVertices() != 40 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	res := ShortestPaths(g, 0)
	if res.Dist[39] != 11 {
		t.Fatalf("corner distance %d, want 11", res.Dist[39])
	}
}

func TestWithMultiScaleWeightsFacade(t *testing.T) {
	g := WithMultiScaleWeights(GridGraph(6, 6), 10, 8, 5)
	if !g.Weighted() {
		t.Fatal("not weighted")
	}
	if g.WeightRatio() < 100 {
		t.Fatalf("ratio %v too small for multi-scale", g.WeightRatio())
	}
}

func TestConcurrentBFSFacade(t *testing.T) {
	g := GridGraph(25, 25)
	cost := NewCost()
	a := ConcurrentBFS(g, 0, cost)
	b := ParallelBFS(g, 0, nil)
	for v := range a.Dist {
		if a.Dist[v] != b.Dist[v] {
			t.Fatal("ConcurrentBFS disagrees with ParallelBFS")
		}
	}
	if cost.Depth() == 0 {
		t.Fatal("no depth recorded")
	}
}

func TestWeightedParallelBFSFacade(t *testing.T) {
	g := WithUniformWeights(GridGraph(10, 10), 7, 6)
	cost := NewCost()
	res := WeightedParallelBFS(g, 0, cost)
	exact := ShortestPaths(g, 0)
	for v := range res.Dist {
		if res.Dist[v] != exact.Dist[v] {
			t.Fatal("Dial != Dijkstra via facade")
		}
	}
	// Depth of the weighted BFS equals the distance range swept.
	var maxD Dist
	for _, d := range exact.Dist {
		if d < InfDist && d > maxD {
			maxD = d
		}
	}
	if cost.Depth() < maxD {
		t.Fatalf("depth %d below max distance %d", cost.Depth(), maxD)
	}
}

func TestLimitedHopsetFacade(t *testing.T) {
	g := WithUniformWeights(GridGraph(12, 12), 4, 7)
	res := LimitedHopset(g, 0.6, 0.4, 8)
	if res.Size() == 0 {
		t.Fatal("empty limited hopset")
	}
	// Metric preservation through the facade path.
	aug := NewGraph(g.NumVertices(), append(append([]Edge{}, g.Edges()...), res.Edges...), true)
	a := ShortestPaths(g, 0)
	b := ShortestPaths(aug, 0)
	for v := range a.Dist {
		if a.Dist[v] != b.Dist[v] {
			t.Fatal("limited hopset changed the metric")
		}
	}
}

func TestDefaultParamConstructors(t *testing.T) {
	p := DefaultHopsetParams(9)
	if p.Seed != 9 || p.Epsilon <= 0 {
		t.Fatalf("bad default params %+v", p)
	}
	wp := DefaultScaledHopsetParams(10)
	if wp.Seed != 10 || wp.Eta <= 0 || wp.Zeta <= 0 {
		t.Fatalf("bad default scaled params %+v", wp)
	}
}

func TestGreedySpannerFacade(t *testing.T) {
	g := WithUniformWeights(RandomGraph(60, 300, 11), 9, 12)
	sp := GreedySpanner(g, 2)
	if sp.Size() == 0 || int64(sp.Size()) > g.NumEdges() {
		t.Fatalf("greedy size %d", sp.Size())
	}
}

func TestOracleOnUnweightedGraph(t *testing.T) {
	// Unweighted graphs flow through the direct (single-scale-ish)
	// path: ratio 1 is trivially poly-bounded.
	g := GridGraph(15, 15)
	o := NewDistanceOracle(g, 0.25, 13)
	if o.Decomposed() {
		t.Fatal("unweighted graph should not decompose")
	}
	d, err := o.Query(0, 224)
	if err != nil {
		t.Fatal(err)
	}
	exact := o.ExactDistance(0, 224)
	if d < exact || float64(d) > 1.6*float64(exact) {
		t.Fatalf("unweighted oracle %d vs exact %d", d, exact)
	}
}

func TestOracleEmptyGraph(t *testing.T) {
	g := NewGraph(3, nil, true)
	o := NewDistanceOracle(g, 0.5, 14)
	if o.HopsetSize() != 0 {
		t.Fatal("edgeless graph grew a hopset")
	}
	d, err := o.Query(0, 2)
	if err != nil || d != InfDist {
		t.Fatalf("edgeless query = %d, %v", d, err)
	}
}
