package spanhop

// This file is the benchmark harness of DESIGN.md's per-experiment
// index: one benchmark per table/figure of the paper, each reporting
// the table's numbers through b.ReportMetric so that
//
//	go test -bench=. -benchmem
//
// regenerates the evaluation. The same experiment code backs
// cmd/figures (which prints the full paper-style tables); benchmarks
// aggregate each experiment to its headline metrics. Seeds are fixed:
// runs are reproducible.

import (
	"fmt"
	"testing"

	"repro/internal/eval"
	"repro/internal/experiments"
)

const benchSeed = 2015

// reportSpanner aggregates Figure 1 rows into per-algorithm size and
// stretch metrics.
func reportSpanner(b *testing.B, rows []experiments.SpannerRow) {
	b.Helper()
	type agg struct {
		size, work, depth float64
		stretch           float64
		n                 int
	}
	byAlgo := map[string]*agg{}
	for _, r := range rows {
		a := byAlgo[r.Algo]
		if a == nil {
			a = &agg{}
			byAlgo[r.Algo] = a
		}
		a.size += float64(r.Size)
		a.work += float64(r.Work)
		a.depth += float64(r.Depth)
		if r.StretchMax > a.stretch {
			a.stretch = r.StretchMax
		}
		a.n++
	}
	for algo, a := range byAlgo {
		key := shortName(algo)
		b.ReportMetric(a.size/float64(a.n), key+"_size")
		b.ReportMetric(a.work/float64(a.n), key+"_work")
		b.ReportMetric(a.depth/float64(a.n), key+"_depth")
		b.ReportMetric(a.stretch, key+"_stretch_max")
	}
}

func shortName(algo string) string {
	switch {
	case algo == "est-spanner (ours)" || algo == "est-hopset (ours)":
		return "ours"
	case algo == "baswana-sen [BS07]":
		return "bs07"
	case algo == "greedy [ADD+93]":
		return "greedy"
	case algo == "ks97 sqrt(n) [KS97]":
		return "ks97"
	case algo == "cohen-style [Coh00]":
		return "cohen"
	case algo == "no hopset":
		return "none"
	}
	return "x"
}

// BenchmarkFigure1Unweighted regenerates the unweighted table of
// Figure 1 (experiment F1-U).
func BenchmarkFigure1Unweighted(b *testing.B) {
	var rows []experiments.SpannerRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure1Unweighted(experiments.Small, benchSeed+uint64(i))
	}
	reportSpanner(b, rows)
}

// BenchmarkFigure1Weighted regenerates the weighted table of Figure 1
// (experiment F1-W; includes the stretch columns of F1-S).
func BenchmarkFigure1Weighted(b *testing.B) {
	var rows []experiments.SpannerRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure1Weighted(experiments.Small, benchSeed+uint64(i))
	}
	reportSpanner(b, rows)
}

// BenchmarkFigure2HopsetComparison regenerates Figure 2 (experiments
// F2-HOP, F2-SIZE, F2-WORK).
func BenchmarkFigure2HopsetComparison(b *testing.B) {
	var rows []experiments.HopsetRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure2(experiments.Small, benchSeed+uint64(i))
	}
	type agg struct {
		size, work, hops float64
		n                int
	}
	byAlgo := map[string]*agg{}
	for _, r := range rows {
		a := byAlgo[r.Algo]
		if a == nil {
			a = &agg{}
			byAlgo[r.Algo] = a
		}
		a.size += float64(r.Size)
		a.work += float64(r.BuildWork)
		a.hops += r.HopsMean
		a.n++
	}
	for algo, a := range byAlgo {
		key := shortName(algo)
		b.ReportMetric(a.size/float64(a.n), key+"_size")
		b.ReportMetric(a.work/float64(a.n), key+"_build_work")
		b.ReportMetric(a.hops/float64(a.n), key+"_hops_mean")
	}
}

// BenchmarkTheorem11Scaling regenerates the Theorem 1.1 size-law sweep
// (experiment T1.1): the reported ratio metrics must stay ~flat as n
// grows.
func BenchmarkTheorem11Scaling(b *testing.B) {
	var rows []experiments.ScalingRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Theorem11Scaling(experiments.Small, benchSeed)
	}
	var ratios []float64
	for _, r := range rows {
		ratios = append(ratios, r.Ratio)
	}
	b.ReportMetric(eval.Mean(ratios), "size_over_bound_mean")
	if len(ratios) > 0 {
		worst := ratios[0]
		for _, x := range ratios {
			if x > worst {
				worst = x
			}
		}
		b.ReportMetric(worst, "size_over_bound_max")
	}
}

// BenchmarkTheorem33Weighted regenerates the Theorem 3.3 weighted
// size-law sweep (experiment T3.3).
func BenchmarkTheorem33Weighted(b *testing.B) {
	var rows []experiments.ScalingRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Theorem33Contraction(experiments.Small, benchSeed)
	}
	var ratios []float64
	for _, r := range rows {
		ratios = append(ratios, r.Ratio)
	}
	b.ReportMetric(eval.Mean(ratios), "size_over_bound_mean")
}

// BenchmarkTheorem44Hopset regenerates the Theorem 4.4 γ2 sweep
// (experiment T4.4).
func BenchmarkTheorem44Hopset(b *testing.B) {
	var rows []experiments.ScalingRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Theorem44Scaling(experiments.Small, benchSeed)
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Size), r.Label+"_size")
		b.ReportMetric(r.Extra, r.Label+"_hops")
		b.ReportMetric(float64(r.Depth), r.Label+"_depth")
	}
}

// BenchmarkTheorem12Pipeline regenerates the end-to-end Theorem 1.2
// comparison (experiment T1.2): hopset query depth vs plain parallel
// search vs sequential Dijkstra.
func BenchmarkTheorem12Pipeline(b *testing.B) {
	var rows []experiments.PipelineRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Theorem12Pipeline(experiments.Small, benchSeed)
	}
	var ours, plain, seq, distort []float64
	for _, r := range rows {
		switch r.Method {
		case "est-hopset query (ours)":
			ours = append(ours, r.QueryLevels)
			distort = append(distort, r.Distortion)
		case "weighted parallel BFS":
			plain = append(plain, r.QueryLevels)
		case "dijkstra (sequential)":
			seq = append(seq, r.QueryLevels)
		}
	}
	b.ReportMetric(eval.Mean(ours), "ours_query_levels")
	b.ReportMetric(eval.Mean(plain), "plainBFS_levels")
	b.ReportMetric(eval.Mean(seq), "dijkstra_depth")
	b.ReportMetric(eval.Mean(distort), "ours_distortion")
	if m := eval.Mean(ours); m > 0 {
		b.ReportMetric(eval.Mean(plain)/m, "depth_reduction_x")
	}
}

// BenchmarkCorollary45Unweighted regenerates the unweighted query
// comparison (experiment C4.5).
func BenchmarkCorollary45Unweighted(b *testing.B) {
	var rows []experiments.PipelineRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Corollary45Unweighted(experiments.Small, benchSeed)
	}
	for _, r := range rows {
		if r.Method == "est-hopset (ours)" {
			b.ReportMetric(r.QueryLevels, "ours_hops")
		} else {
			b.ReportMetric(r.QueryLevels, "bfs_hops")
		}
	}
}

// BenchmarkLemma21Diameter regenerates the Lemma 2.1 radius check
// (experiment L2.1).
func BenchmarkLemma21Diameter(b *testing.B) {
	var rows []experiments.StatRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Lemma21Diameter(experiments.Small, benchSeed)
	}
	reportStats(b, rows)
}

// BenchmarkLemma22Ball regenerates the Lemma 2.2 tail check
// (experiment L2.2).
func BenchmarkLemma22Ball(b *testing.B) {
	var rows []experiments.StatRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Lemma22Ball(experiments.Small, benchSeed)
	}
	reportStats(b, rows)
}

// BenchmarkCorollary23Cut regenerates the Corollary 2.3 cut-mass check
// (experiment C2.3).
func BenchmarkCorollary23Cut(b *testing.B) {
	var rows []experiments.StatRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Corollary23Cut(experiments.Small, benchSeed)
	}
	reportStats(b, rows)
}

// BenchmarkCorollary31Ball regenerates the Corollary 3.1 adjacency
// check (experiment C3.1).
func BenchmarkCorollary31Ball(b *testing.B) {
	var rows []experiments.StatRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Corollary31Adjacency(experiments.Small, benchSeed)
	}
	reportStats(b, rows)
}

// BenchmarkLemma52Rounding regenerates the Klein–Subramanian rounding
// check (experiment L5.2).
func BenchmarkLemma52Rounding(b *testing.B) {
	var rows []experiments.StatRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Lemma52Rounding(experiments.Small, benchSeed)
	}
	reportStats(b, rows)
}

// BenchmarkAppendixB regenerates the weight-class decomposition checks
// (experiment L5.1/B).
func BenchmarkAppendixB(b *testing.B) {
	var rows []experiments.StatRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AppendixBDecomposition(experiments.Small, benchSeed)
	}
	reportStats(b, rows)
}

// BenchmarkAppendixC regenerates the limited-hopset rounds (experiment
// C.1/C.2).
func BenchmarkAppendixC(b *testing.B) {
	var rows []experiments.ScalingRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AppendixCLimited(experiments.Small, benchSeed)
	}
	for _, r := range rows {
		b.ReportMetric(r.Extra, shortLabel(r.Label)+"_hops")
	}
}

func shortLabel(s string) string {
	out := make([]rune, 0, len(s))
	for _, c := range s {
		switch {
		case c == ' ' || c == '=':
			out = append(out, '_')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// BenchmarkSpannerScaling sweeps input sizes for the headline spanner
// construction (wall-clock + work/depth per n, complements T1.1's
// size law with a performance law).
func BenchmarkSpannerScaling(b *testing.B) {
	for _, n := range []V{1 << 11, 1 << 13, 1 << 15} {
		g := RandomGraph(n, 8*int64(n), uint64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var work, depth int64
			for i := 0; i < b.N; i++ {
				cost := NewCost()
				UnweightedSpannerWithCost(g, 3, uint64(i), cost)
				work, depth = cost.Work(), cost.Depth()
			}
			b.ReportMetric(float64(work), "work")
			b.ReportMetric(float64(depth), "depth")
			b.ReportMetric(float64(work)/float64(g.NumEdges()), "work_per_edge")
		})
	}
}

// BenchmarkHopsetScaling sweeps input sizes for the hopset build.
func BenchmarkHopsetScaling(b *testing.B) {
	for _, side := range []V{32, 64, 96} {
		g := GridGraph(side, side)
		b.Run(fmt.Sprintf("grid=%dx%d", side, side), func(b *testing.B) {
			p := DefaultHopsetParams(1)
			p.Gamma2 = 0.6
			var size, work, depth int64
			for i := 0; i < b.N; i++ {
				p.Seed = uint64(i)
				cost := NewCost()
				hs := BuildHopsetWithCost(g, p, cost)
				size, work, depth = int64(hs.Size()), cost.Work(), cost.Depth()
			}
			b.ReportMetric(float64(size), "size")
			b.ReportMetric(float64(work), "work")
			b.ReportMetric(float64(depth), "depth")
		})
	}
}

// BenchmarkOracleQuery measures steady-state oracle query latency and
// depth after preprocessing.
func BenchmarkOracleQuery(b *testing.B) {
	g := WithUniformWeights(GridGraph(50, 50), 500, 1)
	o := NewDistanceOracle(g, 0.25, 2)
	s, t := V(0), g.NumVertices()-1
	if _, err := o.Query(s, t); err != nil { // warm caches
		b.Fatal(err)
	}
	b.ResetTimer()
	var levels int64
	for i := 0; i < b.N; i++ {
		st, err := o.QueryStats(s, t)
		if err != nil {
			b.Fatal(err)
		}
		levels = st.Levels
	}
	b.ReportMetric(float64(levels), "query_levels")
}

// BenchmarkConcurrentBFS contrasts the goroutine frontier expansion
// against the sequential loop at the current GOMAXPROCS.
func BenchmarkConcurrentBFS(b *testing.B) {
	g := GridGraph(300, 300)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ParallelBFS(g, 0, nil)
		}
	})
	b.Run("goroutines", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ConcurrentBFS(g, 0, nil)
		}
	})
}

// BenchmarkWeightedSSSP is the weighted "does the PRAM model translate
// to cores" check: sequential Dijkstra and Dial versus the goroutine
// Δ-stepping on the generator families, at the current GOMAXPROCS.
// On a multicore host Δ-stepping should win wall-clock on the large
// graphs; distances are identical across all three (differential
// tests assert it), so this benchmark is purely about speed.
func BenchmarkWeightedSSSP(b *testing.B) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"gnm-n=1e5-m=8e5", WithUniformWeights(RandomGraph(100_000, 800_000, 7), 64, 8)},
		{"grid-400x400", WithUniformWeights(GridGraph(400, 400), 32, 9)},
		{"rmat-s=16-m=5e5", WithUniformWeights(RMATGraph(16, 500_000, 10), 64, 11)},
	}
	for _, tc := range cases {
		b.Run(tc.name+"/dijkstra", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ShortestPaths(tc.g, 0)
			}
		})
		b.Run(tc.name+"/dial", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				WeightedParallelBFS(tc.g, 0, nil)
			}
		})
		b.Run(tc.name+"/deltastep", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ParallelShortestPaths(tc.g, 0, nil)
			}
		})
		// The pooled-execution shape: a shared exec context recycles
		// the result and scratch arrays through its arenas (Release),
		// and the frontier fan-out reuses pooled workers. Both the
		// plain and pooled rows now sit far below the pre-refactor
		// per-call-goroutine path (which paid thousands of allocs/op
		// in goroutine spawns and per-iteration chunk buffers); the
		// pooled row additionally recycles the O(n) result arrays.
		b.Run(tc.name+"/deltastep-pooled", func(b *testing.B) {
			b.ReportAllocs()
			ec := ParallelExec(0)
			for i := 0; i < b.N; i++ {
				res := ParallelShortestPathsOn(tc.g, 0, ec, nil)
				res.Release(ec)
			}
		})
		b.Run(tc.name+"/dial-pooled", func(b *testing.B) {
			b.ReportAllocs()
			ec := SequentialExec()
			for i := 0; i < b.N; i++ {
				res := WeightedParallelBFSOn(tc.g, 0, ec, nil)
				res.Release(ec)
			}
		})
	}
}

// BenchmarkESTClusterParallel contrasts the sequential bucket race
// against the goroutine bucket expansion (identical output), plus the
// pooled-execution shape whose arenas recycle the race's scratch.
func BenchmarkESTClusterParallel(b *testing.B) {
	g := WithUniformWeights(RandomGraph(100_000, 400_000, 31), 16, 32)
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ESTCluster(g, 0.1, uint64(i))
		}
	})
	b.Run("goroutines", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ESTClusterParallel(g, 0.1, uint64(i), nil)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		ec := ParallelExec(0)
		for i := 0; i < b.N; i++ {
			ESTClusterOn(g, 0.1, uint64(i), ec, nil)
		}
	})
}

// BenchmarkHopLimitedParallel contrasts sequential and concurrent
// Bellman–Ford rounds (the Definition 2.4 query primitive).
func BenchmarkHopLimitedParallel(b *testing.B) {
	g := WithUniformWeights(RandomGraph(50_000, 400_000, 41), 20, 42)
	const hops = 8
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			HopLimitedDistances(g, nil, 0, hops)
		}
	})
	b.Run("goroutines", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ParallelHopLimitedDistances(g, nil, 0, hops)
		}
	})
}

// BenchmarkOracleQueryBatch measures serving throughput: a fixed batch
// answered serially versus fanned across the pooled workers, on the
// legacy (per-query allocation) and exec (arena-recycled) oracles.
// allocs/op on the exec rows is the serving-path allocation budget —
// regressions here show up directly in the CI bench log.
func BenchmarkOracleQueryBatch(b *testing.B) {
	g := WithUniformWeights(GridGraph(50, 50), 500, 1)
	n := g.NumVertices()
	var pairs [][2]V
	for i := V(0); i < 64; i++ {
		pairs = append(pairs, [2]V{(i * 37) % n, (n - 1 - i*53%n) % n})
	}
	for _, mode := range []struct {
		name string
		o    *DistanceOracle
	}{
		{"legacy", NewDistanceOracle(g, 0.25, 2)},
		{"exec", NewDistanceOracleOpts(g, 0.25, 2, OracleOptions{Exec: ParallelExec(0)})},
	} {
		o := mode.o
		if _, err := o.QueryBatch(pairs); err != nil { // warm caches
			b.Fatal(err)
		}
		b.Run(mode.name+"/serial", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, p := range pairs {
					if _, err := o.QueryStats(p[0], p[1]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(mode.name+"/batch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := o.QueryBatch(pairs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOracleBuild measures full oracle preprocessing — the
// registry's build path — sequentially and on a pooled execution
// context. ReportAllocs makes allocation regressions in the build
// pipeline fail visibly in the CI bench log; the exec row's arenas
// keep repeated builds (the many-graphs serving shape) off the GC.
func BenchmarkOracleBuild(b *testing.B) {
	g := WithUniformWeights(GridGraph(60, 60), 100, 3)
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NewDistanceOracle(g, 0.25, 2)
		}
	})
	b.Run("exec-sequential", func(b *testing.B) {
		b.ReportAllocs()
		ec := SequentialExec()
		for i := 0; i < b.N; i++ {
			NewDistanceOracleOpts(g, 0.25, 2, OracleOptions{Exec: ec})
		}
	})
	b.Run("exec-parallel", func(b *testing.B) {
		b.ReportAllocs()
		ec := ParallelExec(0)
		for i := 0; i < b.N; i++ {
			NewDistanceOracleOpts(g, 0.25, 2, OracleOptions{Exec: ec})
		}
	})
}

// BenchmarkDynamicOracleQuery measures the live-update overlay's
// three query regimes against the same base oracle: a clean overlay
// (pure delegation), an improving overlay (sketch over the patched
// endpoints + base-oracle estimates), and a degrading overlay (exact
// bidirectional search on the patched graph) — the cost profile the
// rebuild policy trades against.
func BenchmarkDynamicOracleQuery(b *testing.B) {
	g := WithUniformWeights(GridGraph(40, 40), 50, 3)
	n := g.NumVertices()
	o := NewDistanceOracle(g, 0.25, 2)
	run := func(b *testing.B, d *DynamicOracle) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := d.Query(V(i)%n, V(i*7+13)%n); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("clean", func(b *testing.B) {
		d := NewDynamicOracle(o, RebuildPolicy{Disabled: true})
		defer d.Close()
		run(b, d)
	})
	b.Run("improving-8-inserts", func(b *testing.B) {
		d := NewDynamicOracle(o, RebuildPolicy{Disabled: true})
		defer d.Close()
		var ups []DynamicUpdate
		for i := 0; i < 8; i++ {
			ups = append(ups, DynamicUpdate{Op: UpdateInsert, U: V(i * 11), V: n - 1 - V(i*17), W: W(i + 1)})
		}
		if _, err := d.ApplyUpdates(ups); err != nil {
			b.Fatal(err)
		}
		run(b, d)
	})
	b.Run("degrading-8-deletes", func(b *testing.B) {
		d := NewDynamicOracle(o, RebuildPolicy{Disabled: true})
		defer d.Close()
		var ups []DynamicUpdate
		for i := 0; i < 8; i++ {
			e := g.Edges()[i*31]
			ups = append(ups, DynamicUpdate{Op: UpdateDelete, U: e.U, V: e.V})
		}
		if _, err := d.ApplyUpdates(ups); err != nil {
			b.Fatal(err)
		}
		run(b, d)
	})
}

func reportStats(b *testing.B, rows []experiments.StatRow) {
	b.Helper()
	ok := 0
	for _, r := range rows {
		if r.OK {
			ok++
		}
	}
	b.ReportMetric(float64(ok), "bounds_ok")
	b.ReportMetric(float64(len(rows)), "bounds_total")
	if ok != len(rows) {
		b.Errorf("lemma bounds violated: %d of %d rows failed", len(rows)-ok, len(rows))
	}
}
