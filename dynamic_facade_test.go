package spanhop

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/rng"
)

// mutationSequence builds a valid random mutation batch against the
// current mutated graph (mixing inserts, deletes, and — on weighted
// graphs — reweights).
func mutationSequence(g *Graph, count int, seed uint64) []DynamicUpdate {
	r := rng.New(seed)
	n := g.NumVertices()
	state := map[[2]V]W{}
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		state[[2]V{u, v}] = e.W
	}
	var out []DynamicUpdate
	for len(out) < count {
		u, v := r.Int31n(n), r.Int31n(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		k := [2]V{u, v}
		w, present := state[k]
		switch r.Intn(3) {
		case 0:
			if present {
				continue
			}
			nw := W(1)
			if g.Weighted() {
				nw = W(r.Intn(50) + 1)
			}
			out = append(out, DynamicUpdate{Op: UpdateInsert, U: u, V: v, W: nw})
			state[k] = nw
		case 1:
			if !present {
				continue
			}
			out = append(out, DynamicUpdate{Op: UpdateDelete, U: u, V: v})
			delete(state, k)
		default:
			if !present || !g.Weighted() {
				continue
			}
			nw := W(r.Intn(50) + 1)
			if nw == w {
				nw++
			}
			out = append(out, DynamicUpdate{Op: UpdateReweight, U: u, V: v, W: nw})
			state[k] = nw
		}
	}
	return out
}

// TestDynamicOracleDifferential is the acceptance differential: for
// every workload family (er/rmat/grid × weighted/unweighted), a
// DynamicOracle after a random mutation sequence answers every
// sampled query within the documented bound of the exact distance on
// the mutated graph — the same [(1−ε)·d, 3·d] envelope the static
// oracle tests use, since the overlay adds no error term — and after
// ForceRebuild its answers exactly match a from-scratch
// DistanceOracle built on the same mutated graph with the same eps
// and seed.
func TestDynamicOracleDifferential(t *testing.T) {
	const eps = 0.25
	families := []struct {
		name string
		g    *Graph
	}{
		{"er-unweighted", RandomGraph(90, 240, 1)},
		{"er-weighted", WithUniformWeights(RandomGraph(90, 240, 2), 25, 3)},
		{"rmat-unweighted", RMATGraph(6, 200, 4)},
		{"rmat-weighted", WithUniformWeights(RMATGraph(6, 200, 5), 25, 6)},
		{"grid-unweighted", GridGraph(8, 8)},
		{"grid-weighted", WithUniformWeights(GridGraph(8, 8), 25, 7)},
	}
	for fi, f := range families {
		f := f
		seed := uint64(fi)*13 + 2
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			o := NewDistanceOracle(f.g, eps, seed)
			d := NewDynamicOracle(o, RebuildPolicy{Disabled: true})
			defer d.Close()
			if _, err := d.ApplyUpdates(mutationSequence(f.g, 10, seed^0xfeed)); err != nil {
				t.Fatal(err)
			}
			mutated := d.MutatedGraph()
			fresh := NewDistanceOracle(mutated, eps, seed)

			r := rng.New(seed ^ 0xbeef)
			n := f.g.NumVertices()
			check := func(stage string, wantExactOracle *DistanceOracle) {
				for q := 0; q < 40; q++ {
					s, u := r.Int31n(n), r.Int31n(n)
					got, err := d.Query(s, u)
					if err != nil {
						t.Fatalf("%s: Query(%d,%d): %v", stage, s, u, err)
					}
					exact := ShortestPaths(mutated, s).Dist[u]
					if exact == InfDist {
						if got != InfDist {
							t.Fatalf("%s: (%d,%d) disconnected in mutated graph, answered %d", stage, s, u, got)
						}
						continue
					}
					if float64(got) < (1-eps)*float64(exact)-1e-9 {
						t.Fatalf("%s: (%d,%d) = %d below (1-eps)*%d", stage, s, u, got, exact)
					}
					if exact > 0 && float64(got) > 3*float64(exact) {
						t.Fatalf("%s: (%d,%d) = %d above 3*%d", stage, s, u, got, exact)
					}
					if wantExactOracle != nil {
						want, err := wantExactOracle.Query(s, u)
						if err != nil {
							t.Fatal(err)
						}
						if got != want {
							t.Fatalf("%s: (%d,%d) = %d, from-scratch oracle says %d", stage, s, u, got, want)
						}
					}
				}
			}
			check("overlay", nil)

			// Rebuild through the scheduler machinery, then demand exact
			// agreement with the from-scratch oracle.
			if err := d.ForceRebuild(context.Background()); err != nil {
				t.Fatalf("ForceRebuild: %v", err)
			}
			if d.PendingUpdates() != 0 || d.BaseGeneration() != d.Generation() {
				t.Fatalf("rebuild left pending=%d floor=%d gen=%d",
					d.PendingUpdates(), d.BaseGeneration(), d.Generation())
			}
			check("rebuilt", fresh)
		})
	}
}

// TestDynamicOracleAutoRebuild: the journal-size policy fires on its
// own and swaps in a rebuilt oracle whose answers match a
// from-scratch build.
func TestDynamicOracleAutoRebuild(t *testing.T) {
	g := WithUniformWeights(RandomGraph(70, 180, 11), 20, 12)
	o := NewDistanceOracle(g, 0.25, 9)
	d := NewDynamicOracle(o, RebuildPolicy{MaxJournal: 6, MaxPatchFraction: -1, Workers: 2})
	defer d.Close()
	if _, err := d.ApplyUpdates(mutationSequence(g, 7, 77)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for d.PendingUpdates() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("auto rebuild never ran: %+v", d.RebuildStats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := d.RebuildStats()
	if st.Rebuilds < 1 || st.LastError != "" || st.LastCause != "journal" {
		t.Fatalf("rebuild stats = %+v", st)
	}
	fresh := NewDistanceOracle(d.MutatedGraph(), 0.25, 9)
	r := rng.New(5)
	for q := 0; q < 30; q++ {
		s, u := r.Int31n(g.NumVertices()), r.Int31n(g.NumVertices())
		got, err1 := d.Query(s, u)
		want, err2 := fresh.Query(s, u)
		if err1 != nil || err2 != nil || got != want {
			t.Fatalf("(%d,%d): dynamic %d (%v) vs fresh %d (%v)", s, u, got, err1, want, err2)
		}
	}
}

// TestDynamicOracleQueryAtAndBatch: generation pinning survives
// concurrent-looking use, batch answers align with serial ones, and a
// rebuild compacts old generations away.
func TestDynamicOracleQueryAtAndBatch(t *testing.T) {
	g := WithUniformWeights(GridGraph(6, 6), 15, 21)
	o := NewDistanceOracle(g, 0.3, 4)
	d := NewDynamicOracle(o, RebuildPolicy{Disabled: true})
	defer d.Close()

	gen0 := d.Generation()
	before, err := d.QueryAt(gen0, 0, 35)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyUpdates([]DynamicUpdate{{Op: UpdateInsert, U: 0, V: 35, W: 1}}); err != nil {
		t.Fatal(err)
	}
	after, err := d.Query(0, 35)
	if err != nil {
		t.Fatal(err)
	}
	if after != 1 {
		t.Fatalf("shortcut not honored: %d", after)
	}
	// The pinned generation still sees the pre-mutation graph.
	if got, err := d.QueryAt(gen0, 0, 35); err != nil || got != before {
		t.Fatalf("QueryAt(gen0) = %d (%v), want %d", got, err, before)
	}

	pairs := [][2]V{{0, 35}, {3, 30}, {7, 7}, {12, 29}}
	batch, err := d.QueryBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		st, err := d.QueryStats(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != st {
			t.Fatalf("batch[%d] = %+v, serial %+v", i, batch[i], st)
		}
	}

	if err := d.ForceRebuild(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.QueryAt(gen0, 0, 35); err == nil {
		t.Fatal("compacted generation still answered")
	}
	// Mutations on a degenerate-adjacent path: deleting the shortcut
	// again exercises the exact regime post-rebuild.
	if _, err := d.ApplyUpdates([]DynamicUpdate{{Op: UpdateDelete, U: 0, V: 35}}); err != nil {
		t.Fatal(err)
	}
	exact := ShortestPaths(d.MutatedGraph(), 0).Dist[35]
	if got, err := d.Query(0, 35); err != nil || got != exact {
		t.Fatalf("post-delete Query = %d (%v), want exact %d", got, err, exact)
	}
}

// TestDynamicOracleSnapshotRoundTrip: SaveDynamicOracle persists the
// base oracle plus the pending journal; LoadDynamicOracle replays it,
// reproducing generation and answers; plain LoadOracle refuses to
// silently drop the journal.
func TestDynamicOracleSnapshotRoundTrip(t *testing.T) {
	g := WithUniformWeights(RandomGraph(60, 150, 31), 20, 32)
	o := NewDistanceOracle(g, 0.25, 33)
	d := NewDynamicOracle(o, RebuildPolicy{Disabled: true})
	defer d.Close()
	if _, err := d.ApplyUpdates(mutationSequence(g, 8, 333)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SaveDynamicOracle(&buf, d, []byte("note")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadOracleNote(bytes.NewReader(buf.Bytes()), nil, OracleOptions{}); err == nil {
		t.Fatal("LoadOracle accepted a journal-carrying snapshot")
	}
	d2, note, err := LoadDynamicOracle(bytes.NewReader(buf.Bytes()), nil, OracleOptions{}, RebuildPolicy{Disabled: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if string(note) != "note" {
		t.Fatalf("note = %q", note)
	}
	if d2.Generation() != d.Generation() || d2.BaseGeneration() != d.BaseGeneration() ||
		d2.PendingUpdates() != d.PendingUpdates() {
		t.Fatalf("restored window gen=%d/%d pending=%d, want %d/%d pending=%d",
			d2.BaseGeneration(), d2.Generation(), d2.PendingUpdates(),
			d.BaseGeneration(), d.Generation(), d.PendingUpdates())
	}
	r := rng.New(6)
	n := g.NumVertices()
	for q := 0; q < 30; q++ {
		s, u := r.Int31n(n), r.Int31n(n)
		a, err1 := d.Query(s, u)
		b, err2 := d2.Query(s, u)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("(%d,%d): %d (%v) vs restored %d (%v)", s, u, a, err1, b, err2)
		}
	}
	// A static save of a dynamic oracle with an EMPTY journal loads
	// either way.
	if err := d.ForceRebuild(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := SaveDynamicOracle(&buf2, d, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadOracleNote(bytes.NewReader(buf2.Bytes()), nil, OracleOptions{}); err != nil {
		t.Fatalf("journal-free dynamic snapshot rejected by LoadOracle: %v", err)
	}
}

// TestDynamicOracleUnweightedJournalRoundTrip: an unweighted insert
// sent without a weight (the HTTP default, W=0) must persist as the
// normalized weight-1 entry — the strict journal decoder would
// otherwise reject the snapshot the writer itself produced.
func TestDynamicOracleUnweightedJournalRoundTrip(t *testing.T) {
	g := GridGraph(4, 4) // unweighted
	o := NewDistanceOracle(g, 0.3, 2)
	d := NewDynamicOracle(o, RebuildPolicy{Disabled: true})
	defer d.Close()
	if _, err := d.ApplyUpdates([]DynamicUpdate{
		{Op: UpdateInsert, U: 0, V: 15},       // W omitted
		{Op: UpdateDelete, U: 0, V: 1, W: 99}, // junk delete weight must not persist
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveDynamicOracle(&buf, d, nil); err != nil {
		t.Fatal(err)
	}
	d2, _, err := LoadDynamicOracle(bytes.NewReader(buf.Bytes()), nil, OracleOptions{}, RebuildPolicy{Disabled: true})
	if err != nil {
		t.Fatalf("round trip of normalized journal failed: %v", err)
	}
	defer d2.Close()
	if got, err := d2.Query(0, 15); err != nil || got != 1 {
		t.Fatalf("restored Query(0,15) = %d (%v), want 1", got, err)
	}
}

// TestDynamicOracleDegenerateBase: a degenerate static oracle (no
// edges) becomes routable through overlay insertions alone, and a
// rebuild graduates it to a real oracle.
func TestDynamicOracleDegenerateBase(t *testing.T) {
	g := NewGraph(4, nil, false)
	o := NewDistanceOracle(g, 0.5, 1)
	if !o.Degenerate() {
		t.Fatal("edgeless oracle not degenerate")
	}
	d := NewDynamicOracle(o, RebuildPolicy{Disabled: true})
	defer d.Close()
	if _, err := d.ApplyUpdates([]DynamicUpdate{
		{Op: UpdateInsert, U: 0, V: 1},
		{Op: UpdateInsert, U: 1, V: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if got, err := d.Query(0, 2); err != nil || got != 2 {
		t.Fatalf("Query(0,2) = %d (%v), want 2", got, err)
	}
	if got, err := d.Query(0, 3); err != nil || got != InfDist {
		t.Fatalf("Query(0,3) = %d (%v), want InfDist", got, err)
	}
	if err := d.ForceRebuild(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d.Oracle().Degenerate() {
		t.Fatal("rebuilt oracle still degenerate")
	}
	if got, err := d.Query(0, 2); err != nil || got != 2 {
		t.Fatalf("post-rebuild Query(0,2) = %d (%v), want 2", got, err)
	}
}
