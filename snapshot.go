package spanhop

import (
	"fmt"
	"io"

	"repro/internal/exec"
	"repro/internal/snapshot"
)

// This file is the facade over internal/snapshot: preprocess-once /
// query-many only pays off if "once" survives the process, so a built
// DistanceOracle can be saved to a self-contained, versioned,
// checksummed snapshot and restored in milliseconds — the wscale
// decomposition, every per-band hopset, and the degenerate/direct
// fast paths round-trip bit-identically (restored oracles answer
// exactly what the in-memory oracle would, QueryStats included).

// SaveOracle writes a self-contained snapshot of o (including its
// base graph) to w. The oracle must be fully built: saving an oracle
// whose build was canceled returns an error.
func SaveOracle(w io.Writer, o *DistanceOracle) error {
	return SaveOracleNote(w, o, nil)
}

// SaveOracleNote is SaveOracle with an opaque caller annotation
// stored alongside the oracle (the serving layer keeps the graph's
// registration spec there). len(note) is capped at 1 MiB.
func SaveOracleNote(w io.Writer, o *DistanceOracle, note []byte) error {
	so := &snapshot.Oracle{
		Eps:        o.eps,
		Seed:       o.seed,
		Degenerate: o.degenerate,
		Direct:     o.direct,
		Dec:        o.dec,
		Instances:  o.instances,
	}
	return snapshot.WriteOracle(w, o.g, so, note)
}

// LoadOracle restores a SaveOracle snapshot. If g is non-nil it must
// fingerprint-match the snapshot's embedded graph and becomes the
// oracle's base (sharing the caller's already-resident graph); nil
// uses the embedded copy. opt supplies the execution contexts queries
// run on, resolved exactly as NewDistanceOracleOpts resolves them
// (QueryExec wins, then Exec.Detached(), then the deprecated Parallel
// bool); build-only fields (Cost) are ignored — nothing is built.
//
// The restored oracle is bit-identical to the one saved: every Query/
// QueryBatch answer, including Levels and Fallback diagnostics,
// matches the in-memory original.
func LoadOracle(r io.Reader, g *Graph, opt OracleOptions) (*DistanceOracle, error) {
	o, _, err := LoadOracleNote(r, g, opt)
	return o, err
}

// LoadOracleNote is LoadOracle returning the annotation stored by
// SaveOracleNote (nil when none).
func LoadOracleNote(r io.Reader, g *Graph, opt OracleOptions) (*DistanceOracle, []byte, error) {
	so, embedded, note, err := snapshot.ReadOracle(r)
	if err != nil {
		return nil, nil, err
	}
	base := embedded
	if g != nil {
		// so.Fingerprint is the META digest ReadOracle already verified
		// the embedded graph against — no need to rehash it here.
		if g.Fingerprint() != so.Fingerprint {
			return nil, nil, fmt.Errorf("spanhop: snapshot was built for a different graph (fingerprint %#x, got %#x)",
				so.Fingerprint, g.Fingerprint())
		}
		base = g
		// Rebind the restored structures to the caller's graph so the
		// snapshot's embedded copy can be collected.
		if so.Direct != nil {
			so.Direct.Rebind(base)
		}
		if so.Dec != nil {
			so.Dec.Base = base
		}
	}
	ec := opt.Exec
	if ec == nil && opt.Parallel {
		ec = exec.Default()
	}
	queryEc := opt.QueryExec
	if queryEc == nil {
		queryEc = ec.Detached()
	}
	o := &DistanceOracle{
		g:          base,
		eps:        so.Eps,
		seed:       so.Seed,
		degenerate: so.Degenerate,
		direct:     so.Direct,
		dec:        so.Dec,
		instances:  so.Instances,
		queryEc:    queryEc,
	}
	return o, note, nil
}
