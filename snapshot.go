package spanhop

import (
	"fmt"
	"io"

	"repro/internal/dynamic"
	"repro/internal/exec"
	"repro/internal/snapshot"
)

// This file is the facade over internal/snapshot: preprocess-once /
// query-many only pays off if "once" survives the process, so a built
// DistanceOracle can be saved to a self-contained, versioned,
// checksummed snapshot and restored in milliseconds — the wscale
// decomposition, every per-band hopset, and the degenerate/direct
// fast paths round-trip bit-identically (restored oracles answer
// exactly what the in-memory oracle would, QueryStats included).

// SaveOracle writes a self-contained snapshot of o (including its
// base graph) to w. The oracle must be fully built: saving an oracle
// whose build was canceled returns an error.
func SaveOracle(w io.Writer, o *DistanceOracle) error {
	return SaveOracleNote(w, o, nil)
}

// SaveOracleNote is SaveOracle with an opaque caller annotation
// stored alongside the oracle (the serving layer keeps the graph's
// registration spec there). len(note) is capped at 1 MiB.
func SaveOracleNote(w io.Writer, o *DistanceOracle, note []byte) error {
	return saveOracleJournal(w, o, note, 0, nil)
}

func saveOracleJournal(w io.Writer, o *DistanceOracle, note []byte, floor uint64, journal []dynamic.Entry) error {
	return snapshot.WriteOracle(w, o.g, o.exchange(floor, journal), note)
}

// exchange converts the oracle to the codec/arena exchange shape.
func (o *DistanceOracle) exchange(floor uint64, journal []dynamic.Entry) *snapshot.Oracle {
	return &snapshot.Oracle{
		Eps:        o.eps,
		Seed:       o.seed,
		Degenerate: o.degenerate,
		Direct:     o.direct,
		Dec:        o.dec,
		Instances:  o.instances,
		FloorGen:   floor,
		Journal:    journal,
	}
}

// SaveOracleFlat writes o in the snapshot-v3 flat-arena format: the
// oracle's arrays laid out contiguously with per-section checksums,
// so a later OpenOracleFile (or LoadOracle) restores it by mapping —
// not decoding — the file. The arena is a same-machine cache format
// (host endianness); use SaveOracle for portable interchange.
func SaveOracleFlat(w io.Writer, o *DistanceOracle) error {
	return SaveOracleFlatNote(w, o, nil)
}

// SaveOracleFlatNote is SaveOracleFlat with an opaque annotation, as
// SaveOracleNote.
func SaveOracleFlatNote(w io.Writer, o *DistanceOracle, note []byte) error {
	return snapshot.WriteOracleFlat(w, o.g, o.exchange(0, nil), note)
}

// SaveDynamicOracleFlat is SaveDynamicOracle in the flat-arena
// format: base oracle plus pending journal, mappable on restart.
func SaveDynamicOracleFlat(w io.Writer, d *DynamicOracle, note []byte) error {
	base, _, floor, journal := d.ov.PersistState()
	o := base.(baseAdapter).o
	return snapshot.WriteOracleFlat(w, o.g, o.exchange(floor, journal), note)
}

// SaveDynamicOracle persists a dynamic oracle: the current static
// base oracle plus the pending mutation journal (and its generation
// window), captured atomically with respect to rebuild swaps. A
// restore via LoadDynamicOracle replays the journal, so the restored
// oracle reports the same Generation and answers the same queries.
func SaveDynamicOracle(w io.Writer, d *DynamicOracle, note []byte) error {
	base, _, floor, journal := d.ov.PersistState()
	return saveOracleJournal(w, base.(baseAdapter).o, note, floor, journal)
}

// LoadOracle restores a SaveOracle snapshot. If g is non-nil it must
// fingerprint-match the snapshot's embedded graph and becomes the
// oracle's base (sharing the caller's already-resident graph); nil
// uses the embedded copy. opt supplies the execution contexts queries
// run on, resolved exactly as NewDistanceOracleOpts resolves them
// (QueryExec wins, then Exec.Detached(), then the deprecated Parallel
// bool); build-only fields (Cost) are ignored — nothing is built.
//
// The restored oracle is bit-identical to the one saved: every Query/
// QueryBatch answer, including Levels and Fallback diagnostics,
// matches the in-memory original.
func LoadOracle(r io.Reader, g *Graph, opt OracleOptions) (*DistanceOracle, error) {
	o, _, err := LoadOracleNote(r, g, opt)
	return o, err
}

// LoadOracleNote is LoadOracle returning the annotation stored by
// SaveOracleNote (nil when none). A snapshot carrying a pending
// mutation journal (SaveDynamicOracle) is refused: silently dropping
// un-rebuilt mutations would serve a stale graph — restore those with
// LoadDynamicOracle.
func LoadOracleNote(r io.Reader, g *Graph, opt OracleOptions) (*DistanceOracle, []byte, error) {
	o, note, _, journal, err := loadOracle(r, g, opt)
	if err != nil {
		return nil, nil, err
	}
	if len(journal) > 0 {
		return nil, nil, fmt.Errorf("spanhop: snapshot carries %d pending mutations; load it with LoadDynamicOracle", len(journal))
	}
	return o, note, nil
}

// LoadDynamicOracle restores a SaveDynamicOracle (or SaveOracle)
// snapshot as a DynamicOracle: the base oracle is rebuilt from the
// stream exactly as LoadOracle would, then the persisted journal is
// replayed into the overlay, so the restored oracle reports the saved
// Generation and answers queries with every pending mutation applied.
// g and opt behave as in LoadOracle; pol configures the restored
// oracle's rebuild scheduler.
func LoadDynamicOracle(r io.Reader, g *Graph, opt OracleOptions, pol RebuildPolicy) (*DynamicOracle, []byte, error) {
	o, note, floor, journal, err := loadOracle(r, g, opt)
	if err != nil {
		return nil, nil, err
	}
	d := newDynamicOracleAt(o, pol, floor)
	if err := d.ov.Replay(journal); err != nil {
		d.Close()
		return nil, nil, fmt.Errorf("%w: journal replay: %v", snapshot.ErrCorrupt, err)
	}
	// A restored journal may already be past the rebuild policy; let
	// the scheduler decide instead of waiting for the next mutation.
	if !d.disabled && len(journal) > 0 {
		d.sch.Notify()
	}
	return d, note, nil
}

func loadOracle(r io.Reader, g *Graph, opt OracleOptions) (*DistanceOracle, []byte, uint64, []dynamic.Entry, error) {
	so, embedded, note, err := snapshot.ReadOracle(r)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	o, err := assembleOracle(so, embedded, g, opt)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	return o, note, so.FloorGen, so.Journal, nil
}

// assembleOracle binds a restored snapshot exchange to a base graph
// and execution contexts — the shared tail of every load path (codec
// stream, in-memory arena, mapped arena).
func assembleOracle(so *snapshot.Oracle, embedded *Graph, g *Graph, opt OracleOptions) (*DistanceOracle, error) {
	base := embedded
	if g != nil {
		// so.Fingerprint is the digest the snapshot layer already
		// verified (META hash for the codec, checksummed header for the
		// arena) — no need to rehash the embedded copy here.
		if g.Fingerprint() != so.Fingerprint {
			return nil, fmt.Errorf("spanhop: snapshot was built for a different graph (fingerprint %#x, got %#x)",
				so.Fingerprint, g.Fingerprint())
		}
		base = g
		// Rebind the restored structures to the caller's graph so the
		// snapshot's embedded copy can be collected (for a mapped arena
		// the copy costs no heap — rebinding just keeps the two loads
		// consistent).
		if so.Direct != nil {
			so.Direct.Rebind(base)
		}
		if so.Dec != nil {
			so.Dec.Base = base
		}
	}
	ec := opt.Exec
	if ec == nil && opt.Parallel {
		ec = exec.Default()
	}
	queryEc := opt.QueryExec
	if queryEc == nil {
		queryEc = ec.Detached()
	}
	return &DistanceOracle{
		g:          base,
		eps:        so.Eps,
		seed:       so.Seed,
		degenerate: so.Degenerate,
		direct:     so.Direct,
		dec:        so.Dec,
		instances:  so.Instances,
		queryEc:    queryEc,
	}, nil
}

// OpenOracleFile restores a flat-arena (v3) snapshot file by memory
// mapping: startup is page-table setup plus checksum and structural
// validation — the oracle's arrays are served straight from the page
// cache and fault in as queries touch them. The mapping lives exactly
// as long as the returned oracle (an internal reference pins it for
// the garbage collector; there is nothing to close). g and opt behave
// as in LoadOracle. Only v3 files open this way — a codec (v1/v2)
// file returns an error directing the caller to LoadOracle.
func OpenOracleFile(path string, g *Graph, opt OracleOptions) (*DistanceOracle, []byte, error) {
	o, note, _, journal, err := openOracleFile(path, g, opt)
	if err != nil {
		return nil, nil, err
	}
	if len(journal) > 0 {
		return nil, nil, fmt.Errorf("spanhop: snapshot carries %d pending mutations; open it with OpenDynamicOracleFile", len(journal))
	}
	return o, note, nil
}

// OpenDynamicOracleFile is OpenOracleFile for dynamic oracles: the
// mapped base oracle plus the persisted journal replayed into the
// overlay, as LoadDynamicOracle.
func OpenDynamicOracleFile(path string, g *Graph, opt OracleOptions, pol RebuildPolicy) (*DynamicOracle, []byte, error) {
	o, note, floor, journal, err := openOracleFile(path, g, opt)
	if err != nil {
		return nil, nil, err
	}
	d := newDynamicOracleAt(o, pol, floor)
	if err := d.ov.Replay(journal); err != nil {
		d.Close()
		return nil, nil, fmt.Errorf("%w: journal replay: %v", snapshot.ErrCorrupt, err)
	}
	if !d.disabled && len(journal) > 0 {
		d.sch.Notify()
	}
	return d, note, nil
}

func openOracleFile(path string, g *Graph, opt OracleOptions) (*DistanceOracle, []byte, uint64, []dynamic.Entry, error) {
	so, embedded, note, m, err := snapshot.MapOracleFile(path, g)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	o, err := assembleOracle(so, embedded, g, opt)
	if err != nil {
		m.Close()
		return nil, nil, 0, nil, err
	}
	// The oracle's arrays alias the mapping; pin it to the oracle so
	// the GC cannot unmap pages a query is still walking.
	o.arena = m
	return o, note, so.FloorGen, so.Journal, nil
}

// FlatInfo reports whether the oracle was restored from a flat arena
// file (OpenOracleFile / OpenDynamicOracleFile) and, if so, how many
// bytes of arena back it — mmap'd on unix, read into an aligned
// buffer on platforms without mmap. Built or codec-loaded oracles
// report (false, 0).
func (o *DistanceOracle) FlatInfo() (flatBacked bool, arenaBytes int64) {
	if o.arena == nil {
		return false, 0
	}
	return true, o.arena.Size()
}
