package spanhop

// Differential coverage for oracle snapshots: save → load must answer
// bit-identically to the in-memory oracle across every graph family
// and oracle shape (direct, decomposed, degenerate), because a
// warm-started daemon replaces a freshly built oracle wholesale.

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
)

// queryPairs samples a deterministic mix of s-t pairs including
// identical, adjacent, and far endpoints.
func queryPairs(n int32, count int, seed int64) [][2]V {
	r := rand.New(rand.NewSource(seed))
	pairs := make([][2]V, 0, count+2)
	if n > 0 {
		pairs = append(pairs, [2]V{0, 0}, [2]V{0, n - 1})
	}
	for i := 0; i < count; i++ {
		pairs = append(pairs, [2]V{V(r.Int31n(n)), V(r.Int31n(n))})
	}
	return pairs
}

func assertOracleEquivalent(t *testing.T, name string, want, got *DistanceOracle, pairs [][2]V) {
	t.Helper()
	if got.Eps() != want.Eps() || got.Seed() != want.Seed() {
		t.Fatalf("%s: restored eps/seed = %v/%d, want %v/%d",
			name, got.Eps(), got.Seed(), want.Eps(), want.Seed())
	}
	if got.Degenerate() != want.Degenerate() || got.Decomposed() != want.Decomposed() {
		t.Fatalf("%s: restored shape degenerate=%v decomposed=%v, want %v/%v",
			name, got.Degenerate(), got.Decomposed(), want.Degenerate(), want.Decomposed())
	}
	if got.InstanceCount() != want.InstanceCount() || got.HopsetSize() != want.HopsetSize() {
		t.Fatalf("%s: restored instances=%d hopset=%d, want %d/%d",
			name, got.InstanceCount(), got.HopsetSize(), want.InstanceCount(), want.HopsetSize())
	}
	wantRes, err := want.QueryBatch(pairs)
	if err != nil {
		t.Fatalf("%s: original QueryBatch: %v", name, err)
	}
	gotRes, err := got.QueryBatch(pairs)
	if err != nil {
		t.Fatalf("%s: restored QueryBatch: %v", name, err)
	}
	for i := range pairs {
		if wantRes[i] != gotRes[i] {
			t.Fatalf("%s: pair %v: restored %+v != original %+v",
				name, pairs[i], gotRes[i], wantRes[i])
		}
	}
}

func saveLoad(t *testing.T, o *DistanceOracle, g *Graph) *DistanceOracle {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveOracle(&buf, o); err != nil {
		t.Fatalf("SaveOracle: %v", err)
	}
	back, err := LoadOracle(bytes.NewReader(buf.Bytes()), g, OracleOptions{})
	if err != nil {
		t.Fatalf("LoadOracle: %v", err)
	}
	return back
}

func TestSnapshotRoundTripFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"er-unweighted", RandomGraph(220, 900, 7)},
		{"er-weighted", WithUniformWeights(RandomGraph(220, 900, 8), 40, 9)},
		{"rmat-unweighted", RMATGraph(7, 600, 10)},
		{"rmat-weighted", WithUniformWeights(RMATGraph(7, 600, 11), 25, 12)},
		{"grid-unweighted", GridGraph(12, 13)},
		{"grid-weighted", WithUniformWeights(GridGraph(12, 13), 30, 13)},
		{"grid-multiscale", WithMultiScaleWeights(GridGraph(9, 9), 10, 24, 14)},
		{"er-multiscale", WithMultiScaleWeights(RandomGraph(150, 600, 15), 10, 20, 16)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			o := NewDistanceOracle(tc.g, 0.3, 42)
			pairs := queryPairs(tc.g.NumVertices(), 30, 99)
			// Load both against the caller graph and self-contained.
			back := saveLoad(t, o, tc.g)
			assertOracleEquivalent(t, tc.name, o, back, pairs)
			var buf bytes.Buffer
			if err := SaveOracle(&buf, o); err != nil {
				t.Fatalf("SaveOracle: %v", err)
			}
			selfContained, err := LoadOracle(&buf, nil, OracleOptions{})
			if err != nil {
				t.Fatalf("LoadOracle(nil graph): %v", err)
			}
			assertOracleEquivalent(t, tc.name+"/embedded", o, selfContained, pairs)
		})
	}
}

func TestSnapshotRoundTripDecomposed(t *testing.T) {
	// Extreme weight ratio forces the Appendix B decomposition.
	g := WithMultiScaleWeights(RandomGraph(120, 480, 21), 10, 30, 22)
	o := NewDistanceOracle(g, 0.25, 5)
	if !o.Decomposed() {
		t.Fatal("test graph did not trigger the weight-class decomposition")
	}
	back := saveLoad(t, o, g)
	if !back.Decomposed() {
		t.Fatal("restored oracle lost the decomposition")
	}
	assertOracleEquivalent(t, "decomposed", o, back, queryPairs(g.NumVertices(), 40, 7))
}

func TestSnapshotRoundTripDegenerate(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"single-vertex", NewGraph(1, nil, false)},
		{"no-edges", NewGraph(5, nil, false)},
	} {
		o := NewDistanceOracle(tc.g, 0.5, 3)
		if !o.Degenerate() {
			t.Fatalf("%s: oracle not degenerate", tc.name)
		}
		back := saveLoad(t, o, tc.g)
		if !back.Degenerate() {
			t.Fatalf("%s: restored oracle not degenerate", tc.name)
		}
		if tc.g.NumVertices() >= 2 {
			assertOracleEquivalent(t, tc.name, o, back, [][2]V{{0, 1}, {1, 1}, {0, 4}})
		}
		if _, err := back.Query(0, 0); err != nil {
			t.Fatalf("%s: restored degenerate query: %v", tc.name, err)
		}
	}
}

func TestSnapshotParallelQueryEquivalence(t *testing.T) {
	// A restored oracle handed a parallel query context must still
	// answer bit-identically (queries are context-invariant).
	g := WithUniformWeights(RandomGraph(200, 800, 31), 20, 32)
	o := NewDistanceOracle(g, 0.3, 9)
	var buf bytes.Buffer
	if err := SaveOracle(&buf, o); err != nil {
		t.Fatalf("SaveOracle: %v", err)
	}
	back, err := LoadOracle(&buf, g, OracleOptions{QueryExec: ParallelExec(0)})
	if err != nil {
		t.Fatalf("LoadOracle: %v", err)
	}
	assertOracleEquivalent(t, "parallel-query", o, back, queryPairs(g.NumVertices(), 40, 11))
}

func TestSnapshotRejectsCanceledBuild(t *testing.T) {
	// A cancel-aborted build leaves bands without hopsets; SaveOracle
	// must return an error, not panic and not freeze the partial
	// oracle to disk.
	g := WithUniformWeights(RandomGraph(300, 1200, 51), 25, 52)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the build starts
	ec := NewExecCtx(ctx, 2)
	o := NewDistanceOracleOpts(g, 0.3, 9, OracleOptions{Exec: ec})
	var buf bytes.Buffer
	err := SaveOracle(&buf, o)
	if err == nil {
		t.Fatal("SaveOracle accepted a cancel-aborted oracle")
	}
	if !strings.Contains(err.Error(), "partial") {
		t.Fatalf("error %q does not name the partial oracle", err)
	}
}

func TestSnapshotFingerprintMismatch(t *testing.T) {
	g := WithUniformWeights(GridGraph(8, 8), 9, 1)
	o := NewDistanceOracle(g, 0.3, 2)
	var buf bytes.Buffer
	if err := SaveOracle(&buf, o); err != nil {
		t.Fatalf("SaveOracle: %v", err)
	}
	other := WithUniformWeights(GridGraph(8, 8), 9, 2) // same shape, different weights
	if _, err := LoadOracle(bytes.NewReader(buf.Bytes()), other, OracleOptions{}); err == nil {
		t.Fatal("LoadOracle accepted a mismatched graph")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("mismatch error %q does not mention the fingerprint", err)
	}
}

func TestSnapshotNoteRoundTrip(t *testing.T) {
	g := GridGraph(6, 6)
	o := NewDistanceOracle(g, 0.4, 8)
	note := []byte(`{"gen":"grid:rows=6,cols=6"}`)
	var buf bytes.Buffer
	if err := SaveOracleNote(&buf, o, note); err != nil {
		t.Fatalf("SaveOracleNote: %v", err)
	}
	_, got, err := LoadOracleNote(&buf, g, OracleOptions{})
	if err != nil {
		t.Fatalf("LoadOracleNote: %v", err)
	}
	if !bytes.Equal(got, note) {
		t.Fatalf("note round-trip: got %q, want %q", got, note)
	}
}
