// Command figures regenerates every table and figure of the paper's
// evaluation as plain-text tables (the per-experiment index lives in
// DESIGN.md; the recorded outputs in EXPERIMENTS.md were produced by
// this binary).
//
// Usage:
//
//	figures [-exp all|f1u|f1w|f2|t11|t33|t44|t12|c45|appb|appc|lemmas] [-scale small|full] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (all, f1u, f1w, f2, t11, t33, t44, t12, c45, appb, appc, lemmas)")
	scaleFlag := flag.String("scale", "small", "instance scale: small or full")
	seed := flag.Uint64("seed", 2015, "random seed")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "small":
		scale = experiments.Small
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	type runner struct {
		id, desc string
		run      func()
	}
	runners := []runner{
		{"f1u", "Figure 1 (unweighted spanners)", func() {
			t := experiments.RenderSpannerRows(
				"Figure 1 — unweighted spanners: size / work / depth / measured stretch",
				experiments.Figure1Unweighted(scale, *seed))
			t.Render(os.Stdout)
		}},
		{"f1w", "Figure 1 (weighted spanners)", func() {
			t := experiments.RenderSpannerRows(
				"Figure 1 — weighted spanners across weight ranges U",
				experiments.Figure1Weighted(scale, *seed))
			t.Render(os.Stdout)
		}},
		{"f2", "Figure 2 (hopsets)", func() {
			t := experiments.RenderHopsetRows(
				"Figure 2 — hopset constructions: size / build cost / measured hops at (1+0.5)-approx",
				experiments.Figure2(scale, *seed))
			t.Render(os.Stdout)
		}},
		{"t11", "Theorem 1.1 size scaling", func() {
			t := experiments.RenderScalingRows(
				"Theorem 1.1 — spanner size vs O(n^{1+1/k}) (·log k weighted); flat ratio = law holds",
				experiments.Theorem11Scaling(scale, *seed))
			t.Render(os.Stdout)
		}},
		{"t33", "Theorem 3.3 weighted size law", func() {
			t := experiments.RenderScalingRows(
				"Theorem 3.3 — weighted spanner size vs n^{1+1/k}·log k across k",
				experiments.Theorem33Contraction(scale, *seed))
			t.Render(os.Stdout)
		}},
		{"t44", "Theorem 4.4 hopset scaling", func() {
			t := experiments.RenderScalingRows(
				"Theorem 4.4 — hopset size vs Lemma 4.3 bound; hops vs gamma2",
				experiments.Theorem44Scaling(scale, *seed))
			t.Render(os.Stdout)
		}},
		{"t12", "Theorem 1.2 end-to-end pipeline", func() {
			t := experiments.RenderPipelineRows(
				"Theorem 1.2 / Corollary 5.4 — (1+eps) s-t queries: depth vs exact methods",
				experiments.Theorem12Pipeline(scale, *seed))
			t.Render(os.Stdout)
		}},
		{"c45", "Corollary 4.5 unweighted queries", func() {
			t := experiments.RenderPipelineRows(
				"Corollary 4.5 — unweighted approximate s-t: hop rounds vs BFS",
				experiments.Corollary45Unweighted(scale, *seed))
			t.Render(os.Stdout)
		}},
		{"appb", "Appendix B decomposition", func() {
			t := experiments.RenderStatRows(
				"Appendix B / Lemma 5.1 — weight-class decomposition",
				experiments.AppendixBDecomposition(scale, *seed))
			t.Render(os.Stdout)
		}},
		{"appc", "Appendix C limited hopsets", func() {
			t := experiments.RenderScalingRows(
				"Appendix C / Theorem C.2 — iterated limited hopsets: hops before/after",
				experiments.AppendixCLimited(scale, *seed))
			t.Render(os.Stdout)
		}},
		{"ablations", "design-choice ablations + Brent projection", func() {
			experiments.RenderScalingRows("Ablation — EST shifts vs random centers in the spanner",
				experiments.AblationShifts(scale, *seed)).Render(os.Stdout)
			fmt.Fprintln(os.Stdout)
			experiments.RenderScalingRows("Ablation — hopset delta (cluster-decay exponent)",
				experiments.AblationDelta(scale, *seed)).Render(os.Stdout)
			fmt.Fprintln(os.Stdout)
			experiments.RenderScalingRows("Ablation — query hop-budget escalation factor",
				experiments.AblationEscalation(scale, *seed)).Render(os.Stdout)
			fmt.Fprintln(os.Stdout)
			experiments.BrentProjection(scale, *seed).Render(os.Stdout)
		}},
		{"lemmas", "probabilistic lemma validations", func() {
			experiments.RenderStatRows("Lemma 2.1 — cluster radius vs k·beta^{-1}·ln n",
				experiments.Lemma21Diameter(scale, *seed)).Render(os.Stdout)
			fmt.Fprintln(os.Stdout)
			experiments.RenderStatRows("Lemma 2.2 — ball/cluster intersection tail",
				experiments.Lemma22Ball(scale, *seed)).Render(os.Stdout)
			fmt.Fprintln(os.Stdout)
			experiments.RenderStatRows("Corollary 2.3 — edge cut probability vs beta·w(e)",
				experiments.Corollary23Cut(scale, *seed)).Render(os.Stdout)
			fmt.Fprintln(os.Stdout)
			experiments.RenderStatRows("Corollary 3.1 — ball(1) cluster count vs n^{1/k}",
				experiments.Corollary31Adjacency(scale, *seed)).Render(os.Stdout)
			fmt.Fprintln(os.Stdout)
			experiments.RenderStatRows("Lemma 5.2 — Klein–Subramanian rounding",
				experiments.Lemma52Rounding(scale, *seed)).Render(os.Stdout)
		}},
	}

	want := strings.ToLower(*exp)
	ran := false
	for _, r := range runners {
		if want != "all" && want != r.id {
			continue
		}
		fmt.Printf("### %s [%s, scale=%s, seed=%d]\n\n", r.desc, r.id, *scaleFlag, *seed)
		r.run()
		fmt.Fprintln(os.Stdout)
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "figures: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
