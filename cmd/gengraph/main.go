// Command gengraph writes synthetic workload graphs in the formats
// the other tools read: the human-readable text edge list (default)
// or, with -format binary, the compact binary format — the right
// choice for large generated graphs (16 bytes/edge instead of a
// decimal line). Every consumer (hopset, spanner, spanhopd) sniffs
// the format automatically.
//
// Usage:
//
//	gengraph -family er -n 10000 -m 40000 -out g.txt
//	gengraph -family grid -rows 100 -cols 100 -weights uniform -maxw 50 -out g.txt
//	gengraph -family rmat -scale 14 -m 200000 -weights exp -format binary -out g.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
)

func main() {
	family := flag.String("family", "er", "family: er, grid, torus, rmat, pa, hypercube, path, cycle")
	n := flag.Int("n", 1000, "vertices (er, pa, path, cycle)")
	m := flag.Int64("m", 4000, "edges (er, rmat)")
	rows := flag.Int("rows", 32, "grid rows")
	cols := flag.Int("cols", 32, "grid cols")
	scale := flag.Int("scale", 10, "rmat scale (n = 2^scale)")
	dim := flag.Int("dim", 10, "hypercube dimension")
	deg := flag.Int("deg", 3, "preferential attachment degree")
	weights := flag.String("weights", "none", "weights: none, uniform, exp")
	maxw := flag.Int64("maxw", 100, "max weight (uniform)")
	base := flag.Float64("base", 10, "weight base (exp)")
	scales := flag.Float64("scales", 6, "weight scales (exp)")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("out", "", "output file (default stdout)")
	format := flag.String("format", "text", "output format: text, binary")
	flag.Parse()

	if *format != "text" && *format != "binary" {
		fmt.Fprintf(os.Stderr, "gengraph: unknown format %q (want text or binary)\n", *format)
		os.Exit(2)
	}

	var g *graph.Graph
	switch *family {
	case "er":
		g = graph.RandomConnectedGNM(int32(*n), *m, *seed)
	case "grid":
		g = graph.Grid2D(int32(*rows), int32(*cols))
	case "torus":
		g = graph.Torus2D(int32(*rows), int32(*cols))
	case "rmat":
		g = graph.RMAT(*scale, *m, 0.57, 0.19, 0.19, *seed)
	case "pa":
		g = graph.PreferentialAttachment(int32(*n), *deg, *seed)
	case "hypercube":
		g = graph.Hypercube(*dim)
	case "path":
		g = graph.Path(int32(*n))
	case "cycle":
		g = graph.Cycle(int32(*n))
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown family %q\n", *family)
		os.Exit(2)
	}

	switch *weights {
	case "none":
	case "uniform":
		g = graph.UniformWeights(g, *maxw, *seed+1)
	case "exp":
		g = graph.ExponentialWeights(g, *base, *scales, *seed+1)
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown weights %q\n", *weights)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gengraph:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	write := graph.WriteText
	if *format == "binary" {
		write = graph.WriteBinary
	}
	if err := write(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gengraph: %s n=%d m=%d weighted=%v format=%s\n",
		*family, g.NumVertices(), g.NumEdges(), g.Weighted(), *format)
}
