// Command benchrun runs the canonical benchmark suite and emits a
// schema-versioned BENCH_<n>.json trajectory point, or compares two
// trajectory points and gates on regressions.
//
// Run the suite:
//
//	benchrun [-mode short|full] [-run regexp] [-rounds 3] [-out BENCH_6.json] [-note "..."] \
//	    [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Short mode skips the large-graph stress entries (rmat scale-22,
// DIMACS road) and is what CI runs; full mode is the checked-in
// trajectory point. Each benchmark is sampled -rounds times and the
// lowest-ns/op round is kept — min-of-N rejects the one-sided noise
// (scheduler, GC) that would otherwise flap the gate. The report
// records machine info, go version, git revision, per-benchmark
// ns/op, B/op, allocs/op, and the extra metrics (serving QPS and
// latency quantiles, snapshot sizes).
//
// Compare two reports:
//
//	benchrun -diff OLD.json NEW.json [-threshold 0.10]
//
// Exit status 1 when any cost metric of NEW is more than threshold
// worse than OLD (strictly: exactly 10% passes a 0.10 threshold), or
// when a benchmark disappeared; improvements and new benchmarks are
// reported but never fatal. Reports from different machines compare
// with a warning — absolute numbers move with hardware.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	mode := flag.String("mode", "short", "suite mode: short (CI gate) or full (trajectory point with stress graphs)")
	runFilter := flag.String("run", "", "regexp limiting which suite entries run")
	out := flag.String("out", "", "write the report to this file (default stdout)")
	note := flag.String("note", "", "free-form note recorded in the report")
	rounds := flag.Int("rounds", 3, "independent samples per benchmark; the lowest-ns/op round is kept (min-of-N noise rejection; stress entries always run once)")
	diff := flag.Bool("diff", false, "compare two reports: benchrun -diff OLD.json NEW.json")
	threshold := flag.Float64("threshold", bench.DefaultThreshold, "relative regression gate for -diff (0.10 = 10%)")
	list := flag.Bool("list", false, "list suite entries and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the suite run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after a final GC) to this file")
	flag.Parse()

	if *diff {
		runDiff(flag.Args(), *threshold)
		return
	}
	if flag.NArg() != 0 {
		fatal(fmt.Errorf("unexpected arguments %q (did you mean -diff?)", flag.Args()))
	}

	specs := bench.Suite()
	if *list {
		for _, s := range specs {
			tag := ""
			if s.FullOnly {
				tag = "  (full only)"
			}
			fmt.Printf("%s%s\n", s.Name, tag)
		}
		return
	}

	var full bool
	switch *mode {
	case "short":
	case "full":
		full = true
	default:
		fatal(fmt.Errorf("bad -mode %q: want short or full", *mode))
	}
	var filter *regexp.Regexp
	if *runFilter != "" {
		re, err := regexp.Compile(*runFilter)
		if err != nil {
			fatal(fmt.Errorf("bad -run: %w", err))
		}
		filter = re
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(fmt.Errorf("-cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(fmt.Errorf("-cpuprofile: %w", err))
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	results := bench.Run(specs, bench.RunOptions{Full: full, Filter: filter, Rounds: *rounds, Logf: logf})
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(fmt.Errorf("-memprofile: %w", err))
		}
		runtime.GC() // flush the final allocations into the profile
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(fmt.Errorf("-memprofile: %w", err))
		}
		f.Close()
	}
	report := &bench.Report{
		Schema:    bench.SchemaVersion,
		Mode:      *mode,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GitRev:    gitRev(),
		Note:      *note,
		Machine:   bench.HostMachine(),
		Results:   results,
	}
	if *out == "" {
		if err := bench.Encode(os.Stdout, report); err != nil {
			fatal(err)
		}
		return
	}
	if err := bench.WriteFile(*out, report); err != nil {
		fatal(err)
	}
	logf("wrote %s (%d results, mode=%s)", *out, len(results), *mode)
}

func runDiff(args []string, threshold float64) {
	if len(args) != 2 {
		fatal(fmt.Errorf("-diff wants exactly two files: benchrun -diff OLD.json NEW.json"))
	}
	oldRep, err := bench.ReadFile(args[0])
	if err != nil {
		fatal(err)
	}
	newRep, err := bench.ReadFile(args[1])
	if err != nil {
		fatal(err)
	}
	d := bench.Diff(oldRep, newRep, threshold)
	d.Print(os.Stdout, threshold)
	if !d.OK() {
		os.Exit(1)
	}
}

// gitRev returns the current commit (with a -dirty suffix when the
// tree has local modifications), best-effort: a missing git binary or
// a non-repo checkout leaves it empty rather than failing the run.
func gitRev() string {
	rev, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	out := strings.TrimSpace(string(rev))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(status) > 0 {
		out += "-dirty"
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrun:", err)
	os.Exit(2)
}
