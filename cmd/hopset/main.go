// Command hopset builds a hopset for a graph file, reports its size
// and construction cost, and optionally runs approximate distance
// queries against exact ground truth.
//
// Usage:
//
//	hopset -in graph.txt [-algo est|ks97|cohen|limited] [-seed N] [-queries 10] [-gamma2 0.5] [-workers N] [-parallel]
//	hopset -in graph.txt -save hopset.snap     # build once, persist
//	hopset -load hopset.snap [-queries 100]    # reuse across runs
//
// -save/-load apply to the est multi-scale hopset: -save snapshots
// the built structure (graph included, checksummed), -load restores
// it and skips the build entirely. With both -load and -in, the input
// graph must fingerprint-match the one the snapshot was built for.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/snapshot"
)

func main() {
	in := flag.String("in", "", "input graph file (text or binary; required unless -load)")
	algo := flag.String("algo", "est", "algorithm: est (ours), ks97, cohen, limited")
	seed := flag.Uint64("seed", 1, "random seed")
	queries := flag.Int("queries", 10, "approximate distance queries to run (est only)")
	gamma2 := flag.Float64("gamma2", 0.5, "top-level decomposition exponent (est only)")
	alpha := flag.Float64("alpha", 0.5, "target depth exponent (limited only)")
	parallel := flag.Bool("parallel", false, "run the construction's hot loops on goroutines (est only; deprecated: use -workers)")
	workers := flag.Int("workers", 0, "worker cap for the est build: 1 = sequential, N > 1 = multicore capped at N, 0 = defer to -parallel")
	save := flag.String("save", "", "write the built est hopset to this snapshot file")
	load := flag.String("load", "", "restore an est hopset snapshot instead of building")
	flag.Parse()

	if *in == "" && *load == "" {
		fmt.Fprintln(os.Stderr, "hopset: -in is required (or -load a snapshot)")
		flag.Usage()
		os.Exit(2)
	}
	if *load != "" && *algo != "est" {
		fmt.Fprintln(os.Stderr, "hopset: -load only applies to -algo est")
		os.Exit(2)
	}
	var g *graph.Graph
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		g, err = graph.ReadAuto(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("graph: n=%d m=%d weighted=%v\n", g.NumVertices(), g.NumEdges(), g.Weighted())
	}

	cost := par.NewCost()
	switch *algo {
	case "est":
		var s *hopset.Scaled
		if *load != "" {
			f, err := os.Open(*load)
			if err != nil {
				fatal(err)
			}
			s, _, err = snapshot.ReadScaled(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			if g != nil {
				if g.Fingerprint() != s.Base.Fingerprint() {
					fatal(fmt.Errorf("snapshot %s was built for a different graph than %s", *load, *in))
				}
				s.Rebind(g)
			} else {
				g = s.Base
				fmt.Printf("graph (from snapshot): n=%d m=%d weighted=%v\n",
					g.NumVertices(), g.NumEdges(), g.Weighted())
			}
			fmt.Printf("est multi-scale hopset (restored from %s): %d edges over %d bands\n",
				*load, s.Size(), len(s.Scales))
		} else {
			wp := hopset.DefaultWeightedParams(*seed)
			wp.Gamma2 = *gamma2
			wp.Parallel = *parallel
			if *workers > 0 {
				wp.Exec = exec.Parallel(*workers)
			}
			s = hopset.BuildScaled(g, wp, cost)
			fmt.Printf("est multi-scale hopset: %d edges over %d bands\n", s.Size(), len(s.Scales))
			fmt.Printf("cost: work=%d depth=%d\n", cost.Work(), cost.Depth())
		}
		if *save != "" {
			f, err := os.Create(*save)
			if err != nil {
				fatal(err)
			}
			err = snapshot.WriteScaled(f, s, nil)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fatal(err)
			}
			fmt.Printf("saved hopset snapshot to %s\n", *save)
		}
		if *queries > 0 && g.NumVertices() > 1 {
			r := rng.New(*seed + 3)
			var levels, ratios []float64
			for i := 0; i < *queries; i++ {
				s1 := r.Int31n(g.NumVertices())
				t1 := r.Int31n(g.NumVertices())
				if s1 == t1 {
					continue
				}
				exact := s.ExactDistance(s1, t1)
				if exact == graph.InfDist {
					continue
				}
				q := s.Query(s1, t1, nil)
				levels = append(levels, float64(q.Levels))
				ratios = append(ratios, float64(q.Dist)/float64(exact))
			}
			fmt.Printf("queries: %d, mean levels %.0f, mean returned/exact %.4f\n",
				len(levels), eval.Mean(levels), eval.Mean(ratios))
		}
	case "ks97":
		res := hopset.KS97(g, *seed, cost)
		fmt.Printf("ks97 hopset: %d edges\n", res.Size())
		fmt.Printf("cost: work=%d depth=%d\n", cost.Work(), cost.Depth())
	case "cohen":
		res := hopset.CohenStyle(g, 2, *seed, cost)
		fmt.Printf("cohen-style hopset: %d edges\n", res.Size())
		fmt.Printf("cost: work=%d depth=%d\n", cost.Work(), cost.Depth())
	case "limited":
		res := hopset.Limited(g, *alpha, 0.4, *seed, cost)
		fmt.Printf("limited hopset (alpha=%.2f): %d edges over %d rounds\n",
			*alpha, res.Size(), res.Levels)
		fmt.Printf("cost: work=%d depth=%d\n", cost.Work(), cost.Depth())
	default:
		fmt.Fprintf(os.Stderr, "hopset: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	if *parallel && *algo != "est" {
		fmt.Fprintln(os.Stderr, "hopset: note: -parallel only affects -algo est; baselines ran sequentially")
	}
	if *save != "" && *algo != "est" {
		fmt.Fprintln(os.Stderr, "hopset: note: -save only applies to -algo est; nothing was written")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hopset:", err)
	os.Exit(1)
}
