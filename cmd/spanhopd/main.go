// Command spanhopd serves DistanceOracle queries over HTTP: a
// long-running daemon around internal/server's graph registry and
// batching query executor.
//
// Usage:
//
//	spanhopd -addr :8080 [-load name=path]... [-gen name=spec]... \
//	    [-eps 0.25] [-seed 1] [-workers N] [-parallel] \
//	    [-build-workers 1] [-build-queue 16] \
//	    [-batch-window 2ms] [-max-batch 64] \
//	    [-query-workers N] [-query-queue 1024] [-cache 4096] \
//	    [-snapshot-dir DIR] [-snapshot-format flat|codec] \
//	    [-rebuild-max-journal N] [-rebuild-max-patch-frac F] \
//	    [-rebuild-max-staleness D] \
//	    [-log-format text|json] [-log-level LEVEL] \
//	    [-trace-sample N] [-trace-ring N] \
//	    [-slow-query D] [-slow-query-per-min N] \
//	    [-workload-topk K] [-slo-target D] [-slo-objective F] \
//	    [-profile-dir DIR] [-profile-interval D] [-profile-keep N] \
//	    [-audit-sample N] [-audit-cpu-frac F]
//
// Served graphs accept live edge mutations (POST /graphs/{id}/edges:
// insert/delete/reweight, each stamped with a generation); queries
// reflect them immediately through the dynamic overlay, and the
// -rebuild-max-* policy decides when the journal is folded into a
// fresh oracle in the background. With -snapshot-dir the pending
// journal persists too, so a restart replays it. GET /metrics exposes
// everything as a Prometheus scrape.
//
// Graphs can be preloaded at startup (-load for files in the
// internal/graph text or binary format, -gen for workload.ParseSpec
// generator strings such as "er:n=4096,d=8,w=uniform") or registered
// at runtime via POST /graphs. Queries go to POST /graphs/{id}/query;
// see internal/server for the full API. SIGINT/SIGTERM drain in-flight
// requests before exit.
//
// With -snapshot-dir, every oracle that becomes ready is persisted to
// DIR (one self-contained .snap file per graph, written atomically),
// and on boot the daemon warm-starts every snapshot found there:
// graphs are ready to serve immediately, with no rebuild and no
// build-stage telemetry. A -load/-gen preload whose name was already
// warm-started is skipped, so restarting with identical flags is
// idempotent and cheap.
//
// Observability: every request gets an edge-minted ID (echoed in
// X-Spanhop-Request); lifecycle events log structurally (text or JSON
// per -log-format) and count into /metrics; queries traced by client
// request (X-Spanhop-Trace header) or by -trace-sample land in the
// /debug/traces ring with a per-stage span breakdown; -slow-query
// logs queries over the threshold (rate-limited); pprof is live under
// /debug/pprof/.
//
// Cost attribution and workload analytics: per-graph CPU/allocation
// counters surface as spanhop_graph_* in /metrics and under each
// graph in /stats; GET /debug/workload reports per-graph hot (s,t)
// pairs, op mix, and SLO burn rate (-slo-target, -slo-objective);
// with -profile-dir a background profiler keeps a bounded on-disk
// ring of CPU and heap profiles served at /debug/profiles/.
//
// Answer-quality auditing: every -audit-sample'th served query (and
// every traced one) is shadow re-checked in the background against an
// exact recomputation at the generation it was served from, under a
// hard per-graph CPU budget (-audit-cpu-frac). Observed stretch-ratio
// histograms, violation alarms, and the evidence behind them are at
// GET /debug/quality and as spanhop_stretch_ratio / spanhop_audit_*
// in /metrics; an envelope violation also logs a structured ERROR.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	eps := flag.Float64("eps", 0.25, "oracle accuracy for preloaded graphs")
	seed := flag.Uint64("seed", 1, "seed for preloaded graphs")
	parallel := flag.Bool("parallel", false, "build oracles with goroutine-parallel construction (deprecated: use -workers)")
	workers := flag.Int("workers", 0, "worker cap for oracle builds: 1 = sequential reference build, N > 1 = multicore capped at N, 0 = defer to -parallel")
	buildWorkers := flag.Int("build-workers", 1, "concurrent oracle builds")
	buildQueue := flag.Int("build-queue", 16, "max queued builds (overflow → 503)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "micro-batch coalescing window")
	maxBatch := flag.Int("max-batch", 64, "max queries per micro-batch")
	queryWorkers := flag.Int("query-workers", 0, "concurrent query batches per graph (0 = GOMAXPROCS)")
	queryQueue := flag.Int("query-queue", 1024, "max waiting single queries per graph (overflow → 503)")
	cacheSize := flag.Int("cache", 4096, "per-graph LRU result cache entries (negative disables)")
	snapshotDir := flag.String("snapshot-dir", "", "persist ready oracles here and warm-start them on boot (empty disables)")
	snapshotFormat := flag.String("snapshot-format", server.SnapshotFormatFlat, "snapshot encoding: flat (v3 arena, warm starts by mmap) or codec (portable v2 stream); warm start reads both")
	rebuildJournal := flag.Int("rebuild-max-journal", 0, "rebuild a graph's oracle once this many mutations are pending (0 = default 256, negative disables)")
	rebuildPatchFrac := flag.Float64("rebuild-max-patch-frac", 0, "rebuild once the mutation overlay exceeds this fraction of base edges (0 = default 0.10, negative disables)")
	rebuildStaleness := flag.Duration("rebuild-max-staleness", 0, "rebuild once the oldest pending mutation is this old (0 disables)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	traceSample := flag.Int("trace-sample", 0, "server-side trace sampling: trace every Nth query (0 disables; header-requested traces always work)")
	traceRing := flag.Int("trace-ring", 0, "recent traces kept for GET /debug/traces (0 = default 256, negative disables)")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this (0 disables)")
	slowQueryPerMin := flag.Int("slow-query-per-min", 0, "rate limit for the slow-query log (0 = default 60/min)")
	workloadTopK := flag.Int("workload-topk", 0, "per-graph heavy-hitter sketch capacity for /debug/workload (0 = default 128)")
	sloTarget := flag.Duration("slo-target", 100*time.Millisecond, "query latency SLO threshold for burn-rate tracking (0 disables)")
	sloObjective := flag.Float64("slo-objective", 0.99, "fraction of queries that must beat -slo-target")
	profileDir := flag.String("profile-dir", "", "continuous profiling: keep a ring of CPU/heap profiles here (empty disables)")
	profileInterval := flag.Duration("profile-interval", time.Minute, "continuous profiling capture period")
	profileKeep := flag.Int("profile-keep", 16, "profiles of each kind kept in the -profile-dir ring")
	auditSample := flag.Int("audit-sample", 0, "answer-quality auditing: shadow re-check every Nth served query against exact recomputation (0 = default 64, negative disables rate sampling; traced requests always audit)")
	auditCPUFrac := flag.Float64("audit-cpu-frac", 0, "cap per-graph audit CPU at this fraction of wall time (0 = default 0.05, negative uncaps)")
	var loads, gens []string
	flag.Func("load", "preload a graph file as name=path (repeatable)", func(v string) error {
		loads = append(loads, v)
		return nil
	})
	flag.Func("gen", "preload a generated graph as name=spec (repeatable)", func(v string) error {
		gens = append(gens, v)
		return nil
	})
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		// The logger itself failed to configure; stderr is all we have.
		slog.New(slog.NewTextHandler(os.Stderr, nil)).Error("spanhopd: bad logging flags", "err", err)
		os.Exit(2)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if *snapshotDir != "" {
		if err := os.MkdirAll(*snapshotDir, 0o755); err != nil {
			fatal("spanhopd: -snapshot-dir", "err", err)
		}
	}
	if *snapshotFormat != server.SnapshotFormatFlat && *snapshotFormat != server.SnapshotFormatCodec {
		fatal("spanhopd: bad -snapshot-format", "got", *snapshotFormat, "want", "flat or codec")
	}
	observer := obs.New(obs.Options{
		Logger:             logger,
		TraceRing:          *traceRing,
		SampleEvery:        *traceSample,
		SlowQuery:          *slowQuery,
		SlowQueryPerMinute: *slowQueryPerMin,
	})
	srv := server.New(server.Config{
		BuildWorkers: *buildWorkers,
		BuildQueue:   *buildQueue,
		Workers:      *workers,
		Parallel:     *parallel,
		BatchWindow:  *batchWindow,
		MaxBatch:     *maxBatch,
		QueryWorkers: *queryWorkers,
		QueryQueue:   *queryQueue,
		CacheSize:    *cacheSize,
		SnapshotDir:  *snapshotDir,

		SnapshotFormat: *snapshotFormat,

		RebuildMaxJournal:       *rebuildJournal,
		RebuildMaxPatchFraction: *rebuildPatchFrac,
		RebuildMaxStaleness:     *rebuildStaleness,

		WorkloadTopK: *workloadTopK,
		SLOTarget:    *sloTarget,
		SLOObjective: *sloObjective,

		ProfileDir:      *profileDir,
		ProfileInterval: *profileInterval,
		ProfileKeep:     *profileKeep,

		AuditSample:  *auditSample,
		AuditCPUFrac: *auditCPUFrac,

		Obs: observer,
	})
	if *snapshotDir != "" {
		loaded, errs := srv.Registry().WarmStart()
		for _, we := range errs {
			// The structured record names the file AND the graph id, so
			// an operator can tell which snapshot to inspect or delete.
			logger.Warn("spanhopd: warm-start: skipping snapshot",
				"file", we.File, "graph", we.ID, "err", we.Err)
		}
		if loaded > 0 {
			logger.Info(fmt.Sprintf("spanhopd: warm-started %d graph(s)", loaded),
				"loaded", loaded, "dir", *snapshotDir)
		}
	}

	preload := func(kind string, args []string, mk func(name, v string) server.GraphSpec) {
		for _, a := range args {
			name, v, ok := strings.Cut(a, "=")
			if !ok || name == "" || v == "" {
				fatal("spanhopd: bad preload flag", "flag", "-"+kind, "value", a, "want", "name="+kind)
			}
			want := mk(name, v)
			if e, ok := srv.Registry().Get(name); ok {
				// Already warm-started from a snapshot. A restart with
				// the same preload flags must not rebuild — but if the
				// flags changed (different spec, eps, or seed) the
				// stale oracle must not silently serve either: evict it
				// (snapshot file included) and rebuild.
				got := e.Info().Spec
				if got.File == want.File && got.Gen == want.Gen &&
					got.Eps == want.Eps && got.Seed == want.Seed {
					logger.Info(fmt.Sprintf("spanhopd: skipping -%s %s: already warm-started", kind, name),
						"flag", "-"+kind, "graph", name)
					continue
				}
				logger.Info("spanhopd: preload spec changed since the snapshot; rebuilding",
					"flag", "-"+kind, "graph", name)
				if _, err := srv.Registry().Delete(name); err != nil {
					fatal("spanhopd: evict stale snapshot", "flag", "-"+kind, "graph", name, "err", err)
				}
			}
			e, err := srv.Registry().Add(want)
			if err != nil {
				fatal("spanhopd: preload failed", "flag", "-"+kind, "graph", name, "err", err)
			}
			logger.Info("spanhopd: queued preload build", "graph", e.Info().ID, "kind", kind, "spec", v)
		}
	}
	preload("load", loads, func(name, v string) server.GraphSpec {
		return server.GraphSpec{Name: name, File: v, Eps: *eps, Seed: *seed}
	})
	preload("gen", gens, func(name, v string) server.GraphSpec {
		return server.GraphSpec{Name: name, Gen: v, Eps: *eps, Seed: *seed}
	})

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("spanhopd: listening", "addr", *addr,
		"batch_window", batchWindow.String(), "max_batch", *maxBatch,
		"log_format", *logFormat, "trace_sample", *traceSample)

	select {
	case err := <-errc:
		// Listener died before a signal: config error, not shutdown.
		fatal("spanhopd: listener failed", "err", err)
	case <-ctx.Done():
	}
	logger.Info("spanhopd: draining")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("spanhopd: shutdown", "err", err)
	}
	srv.Close()
	logger.Info("spanhopd: bye")
}
