package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// qualityHandler serves a canned /debug/quality body whose audit
// counters converge after a few polls, like a real auditor draining
// its queue.
func qualityServer(t *testing.T, graphs func(polls int64) []obs.AuditGraphSnapshot) *httptest.Server {
	t.Helper()
	var polls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/quality" {
			http.NotFound(w, r)
			return
		}
		id := r.URL.Query().Get("graph")
		gs := graphs(polls.Add(1))
		if id != "" {
			var match []obs.AuditGraphSnapshot
			for _, g := range gs {
				if g.Graph == id {
					match = append(match, g)
				}
			}
			if match == nil {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(map[string]string{"error": "unknown graph"})
				return
			}
			gs = match
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"graphs": gs})
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestFetchQuality(t *testing.T) {
	ts := qualityServer(t, func(int64) []obs.AuditGraphSnapshot {
		return []obs.AuditGraphSnapshot{
			{Graph: "a", Sampled: 10, Audited: 10, Violations: 2},
			{Graph: "b", Sampled: 1, Audited: 1},
		}
	})
	snap, ok, err := fetchQuality(ts.Client(), ts.URL, "a")
	if err != nil || !ok {
		t.Fatalf("fetchQuality(a) = ok=%v err=%v", ok, err)
	}
	if snap.Violations != 2 || snap.Audited != 10 {
		t.Fatalf("snap = %+v", snap)
	}
	if _, ok, err := fetchQuality(ts.Client(), ts.URL, "nosuch"); ok || err != nil {
		t.Fatalf("fetchQuality(nosuch) = ok=%v err=%v, want miss without error", ok, err)
	}
}

func TestAwaitQualityDrains(t *testing.T) {
	// The first two polls show an undrained pipeline; the third shows
	// every accepted sample accounted for. awaitQuality must keep
	// polling until then and return the settled snapshot.
	ts := qualityServer(t, func(polls int64) []obs.AuditGraphSnapshot {
		g := obs.AuditGraphSnapshot{Graph: "g", Sampled: 8, Audited: 3}
		if polls >= 3 {
			g.Audited, g.StaleSkips, g.Dropped = 5, 2, 1
		}
		return []obs.AuditGraphSnapshot{g}
	})
	snap, err := awaitQuality(ts.Client(), ts.URL, "g", obs.AuditGraphSnapshot{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Audited != 5 || snap.StaleSkips != 2 || snap.Dropped != 1 {
		t.Fatalf("awaitQuality returned before the pipeline drained: %+v", snap)
	}
}

func TestAwaitQualityMissingGraph(t *testing.T) {
	ts := qualityServer(t, func(int64) []obs.AuditGraphSnapshot { return nil })
	if _, err := awaitQuality(ts.Client(), ts.URL, "g", obs.AuditGraphSnapshot{}); err == nil {
		t.Fatal("awaitQuality succeeded for a graph the server never audited")
	}
}
