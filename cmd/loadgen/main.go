// Command loadgen replays synthetic query mixes against a running
// spanhopd and reports client-side throughput/latency plus the
// server's own coalescing and cache counters — the repo's end-to-end
// serving benchmark.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 \
//	    [-graph id | -gen "er:n=4096,d=8,w=uniform"] \
//	    [-mix uniform|hotspot|repeat] [-concurrency 16] [-requests 2000] \
//	    [-mutate N] [-mutate-batch 4] [-mutate-mix churn] \
//	    [-eps 0.25] [-seed 1] [-verify] [-workers N] [-trace-sample N]
//
// With -gen, loadgen registers the graph itself (id "loadgen") and
// waits for the build. With -verify (requires -gen), it rebuilds the
// same oracle locally — generation and preprocessing are
// deterministic in (gen, seed, eps) — and asserts every server answer
// is bit-identical to serial DistanceOracle.Query.
//
// With -mutate N (requires -gen), loadgen first drives N edge-mutation
// batches through POST /graphs/{id}/edges using a deterministic
// workload.Mutator stream, asserting the generation advances by
// exactly one per mutation; the read phase then runs against the
// mutated graph. Combined with -verify, the mutations are replayed
// into a local DynamicOracle replica: pre-rebuild answers are checked
// against the replica's overlay path, then both sides force a rebuild
// (POST /graphs/{id}/rebuild and a local ForceRebuild) so the
// concurrent read phase verifies bit-identical against the same
// compacted generation.
//
// With -trace-sample N, every Nth query carries the X-Spanhop-Trace
// header, so the server traces it and echoes the span breakdown back
// in the response header; loadgen keeps the slowest traced request
// and prints its server-side spans (decode / queue-wait / exec, plus
// cache/batch/regime annotations) against the client-observed
// latency — where a slow request actually spent its time.
//
// With -report-workload, loadgen snapshots GET /debug/workload before
// and after the read phase and cross-checks the server's per-graph
// analytics against the load it just generated: the op-mix delta must
// equal the queries offered, the heavy-hitter sketch total must
// advance by the same amount, and every sketch entry the server
// reports as exact (err == 0) must carry precisely the count this run
// sent for that pair — an end-to-end check that the analytics
// pipeline neither drops nor double-counts demand.
//
// With -report-quality, loadgen snapshots GET /debug/quality before
// the run, waits for the daemon's background answer auditor to drain
// the samples it took from this run's traffic, and asserts zero new
// envelope violations — a closed-loop check that every shadow
// re-checked answer stayed inside the proven stretch envelope. Any new
// violation exits non-zero (it is a server correctness alarm, not a
// load-generation artifact). The -json summary gains a "quality"
// block (samples audited, violations, max stretch ratio).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	spanhop "repro"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "spanhopd base URL")
	graphID := flag.String("graph", "", "existing graph id to query")
	gen := flag.String("gen", "", "generator spec to register and query (id \"loadgen\")")
	mixName := flag.String("mix", "uniform", "query mix: uniform, hotspot, repeat")
	concurrency := flag.Int("concurrency", 16, "concurrent client workers")
	requests := flag.Int("requests", 2000, "total queries to send")
	eps := flag.Float64("eps", 0.25, "oracle accuracy (with -gen)")
	seed := flag.Uint64("seed", 1, "seed (with -gen; also seeds the mixes)")
	verify := flag.Bool("verify", false, "rebuild the oracle locally and verify every answer (needs -gen)")
	mutate := flag.Int("mutate", 0, "edge-mutation batches to apply before the read phase (needs -gen; 0 = off)")
	mutateBatch := flag.Int("mutate-batch", 4, "mutations per batch (with -mutate)")
	mutateMix := flag.String("mutate-mix", "churn", "mutation mix: churn, grow, decay, reweight")
	mutateMaxW := flag.Int64("mutate-maxw", 50, "max weight for inserted/reweighted edges (weighted graphs)")
	workers := flag.Int("workers", 0, "worker cap for the local -verify rebuild; must mirror the daemon's -workers so both sides build the same oracle (0 = the sequential reference build, matching a daemon without -workers/-parallel)")
	traceSample := flag.Int("trace-sample", 0, "request a server-side trace for every Nth query and print the slowest traced request's span breakdown (0 disables)")
	reportWorkload := flag.Bool("report-workload", false, "snapshot /debug/workload around the run and assert the server's hot-pair sketch and op mix match the generated load")
	reportQuality := flag.Bool("report-quality", false, "snapshot /debug/quality around the run and assert the server's answer auditor found zero envelope violations in this run's sampled traffic")
	timeout := flag.Duration("timeout", 120*time.Second, "build-wait timeout")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON summary on stdout (progress moves to stderr); the shape internal/bench and scripts consume")
	flag.Parse()

	if *jsonOut {
		// Keep stdout pure JSON: everything human-facing goes to
		// stderr so `loadgen -json | jq` and the bench harness can
		// parse the summary without scraping.
		progress = os.Stderr
	}

	if (*graphID == "") == (*gen == "") {
		fatal(fmt.Errorf("give exactly one of -graph or -gen"))
	}
	if *verify && *gen == "" {
		fatal(fmt.Errorf("-verify needs -gen (the spec to rebuild locally)"))
	}
	if *mutate > 0 && *gen == "" {
		fatal(fmt.Errorf("-mutate needs -gen (the spec to derive valid mutations from)"))
	}
	if *mutateBatch < 1 {
		*mutateBatch = 1
	}

	client := &http.Client{Timeout: 30 * time.Second}
	id := *graphID
	if *gen != "" {
		id = "loadgen"
		code, body, err := doJSON(client, "POST", *addr+"/graphs",
			server.GraphSpec{Name: id, Gen: *gen, Eps: *eps, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		// 409 duplicate = already registered by a previous run against
		// the same daemon; querying it is fine because the build is
		// deterministic in (gen, eps, seed).
		if code != http.StatusAccepted && code != http.StatusConflict {
			fatal(fmt.Errorf("POST /graphs: %d: %s", code, body))
		}
	}

	info := waitReady(client, *addr, id, *timeout)
	if *gen != "" {
		// If "loadgen" already existed (409 above), it may have been
		// registered by an earlier run with different parameters;
		// querying — and especially -verify — would then target the
		// wrong oracle.
		if info.Spec.Gen != *gen || info.Spec.Eps != *eps || info.Spec.Seed != *seed {
			fatal(fmt.Errorf("graph %q on the daemon was built from (gen=%q eps=%g seed=%d), not the requested (gen=%q eps=%g seed=%d); restart the daemon or change -gen",
				id, info.Spec.Gen, info.Spec.Eps, info.Spec.Seed, *gen, *eps, *seed))
		}
		// A reused graph (409 above) may carry mutations from an earlier
		// -mutate run; the local replica starts from the pristine spec
		// graph, so -mutate/-verify against it would mismatch for
		// reasons that look like server bugs.
		if (*mutate > 0 || *verify) && info.Dynamic != nil && info.Dynamic.Generation > 0 {
			fatal(fmt.Errorf("graph %q already carries %d generations of mutations from a previous run; DELETE /graphs/%s it first (or restart the daemon)",
				id, info.Dynamic.Generation, id))
		}
	}
	infof("graph %s: n=%d m=%d weighted=%v hopset=%d instances=%d (built in %dms)\n",
		id, info.N, info.M, info.Weighted, info.HopsetEdges, info.Instances, info.BuildMS)

	// Generate the spec graph once: the -verify replica and the
	// -mutate stream both derive from it.
	var specGraph *graph.Graph
	if *verify || *mutate > 0 {
		spec, err := workload.ParseSpec(*gen, *seed)
		if err != nil {
			fatal(err)
		}
		specGraph = spec.Gen()
	}

	// The verification reference: a plain static oracle without
	// mutations, or a DynamicOracle replica once -mutate is in play.
	var oracle interface {
		QueryStats(s, t graph.V) (spanhop.QueryStats, error)
	}
	var replica *spanhop.DynamicOracle
	if *verify {
		infof("verify: rebuilding oracle locally (eps=%g seed=%d workers=%d)...\n", *eps, *seed, *workers)
		var opt spanhop.OracleOptions
		if *workers > 0 {
			opt.Exec = spanhop.ParallelExec(*workers)
		}
		static := spanhop.NewDistanceOracleOpts(specGraph, *eps, *seed, opt)
		if *mutate > 0 {
			replica = spanhop.NewDynamicOracle(static, spanhop.RebuildPolicy{Disabled: true, Workers: *workers})
			defer replica.Close()
			oracle = replica
		} else {
			oracle = static
		}
	}

	mutations := 0
	if *mutate > 0 {
		verifiable, total, err := runMutations(client, *addr, id, specGraph, mutationConfig{
			seed: *seed, batches: *mutate, batchSize: *mutateBatch,
			mix: *mutateMix, maxW: *mutateMaxW,
		}, replica)
		if err != nil {
			fatal(err)
		}
		mutations = total
		if !verifiable {
			oracle = nil
		}
	}

	// The -report-workload baseline: analytics counters are cumulative
	// since graph registration, so assertions compare deltas across the
	// read phase (the mutation phase above already recorded op units).
	var beforeWL obs.WorkloadSnapshot
	if *reportWorkload {
		snap, _, err := fetchWorkload(client, *addr, id)
		if err != nil {
			fatal(fmt.Errorf("report-workload: pre-run snapshot: %w", err))
		}
		beforeWL = snap
	}

	// The -report-quality baseline: audit counters are cumulative since
	// graph registration, so the zero-violations assertion compares the
	// delta across this run.
	var beforeQ obs.AuditGraphSnapshot
	if *reportQuality {
		snap, _, err := fetchQuality(client, *addr, id)
		if err != nil {
			fatal(fmt.Errorf("report-quality: pre-run snapshot: %w", err))
		}
		beforeQ = snap
	}

	type sample struct {
		lat time.Duration
	}
	var (
		mu        sync.Mutex
		samples   []sample
		errCount  int
		mismatch  int
		firstErrs []string

		// -report-workload bookkeeping: every request that got an HTTP
		// response was offered to the executor (the server's analytics
		// count demand at executor entry, success or not), and the
		// per-pair counts are the ground truth for the sketch check.
		offered  int64
		pairSent = map[[2]graph.V]int64{}

		// -trace-sample bookkeeping: a global counter picks every Nth
		// request across all workers; the slowest traced request's
		// server-side span breakdown is kept for the report.
		traceSeq    atomic.Uint64
		tracedCount int
		slowestLat  time.Duration
		slowest     obs.TraceData
	)
	if *concurrency < 1 {
		*concurrency = 1
	}
	if *concurrency > *requests {
		*concurrency = *requests
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		// Distribute -requests exactly: the first requests%concurrency
		// workers take one extra.
		perWorker := *requests / *concurrency
		if w < *requests%*concurrency {
			perWorker++
		}
		wg.Add(1)
		go func(w, perWorker int) {
			defer wg.Done()
			mix, err := workload.ParseMix(*mixName, info.N, *seed+uint64(w)*0x9e3779b9)
			if err != nil {
				fatal(err)
			}
			url := fmt.Sprintf("%s/graphs/%s/query", *addr, id)
			for i := 0; i < perWorker; i++ {
				p := mix.Next()
				var reqHdr map[string]string
				traced := *traceSample > 0 && traceSeq.Add(1)%uint64(*traceSample) == 0
				if traced {
					reqHdr = map[string]string{server.TraceHeader: "1"}
				}
				q0 := time.Now()
				code, body, respHdr, err := doJSONHdr(client, "POST", url,
					map[string]any{"s": p[0], "t": p[1]}, reqHdr)
				lat := time.Since(q0)
				if traced && err == nil && code == http.StatusOK {
					if raw := respHdr.Get(server.TraceHeader); raw != "" {
						var td obs.TraceData
						if json.Unmarshal([]byte(raw), &td) == nil {
							mu.Lock()
							tracedCount++
							if lat > slowestLat {
								slowestLat, slowest = lat, td
							}
							mu.Unlock()
						}
					}
				}
				mu.Lock()
				if *reportWorkload && err == nil {
					offered++
					pairSent[p]++
				}
				if err != nil || code != http.StatusOK {
					errCount++
					if len(firstErrs) < 3 {
						firstErrs = append(firstErrs,
							fmt.Sprintf("query %v: code=%d err=%v body=%s", p, code, err, body))
					}
					mu.Unlock()
					continue
				}
				samples = append(samples, sample{lat: lat})
				mu.Unlock()
				if oracle != nil {
					var got struct {
						Dist        graph.Dist `json:"dist"`
						Unreachable bool       `json:"unreachable"`
						Levels      int64      `json:"levels"`
						Fallback    bool       `json:"fallback"`
					}
					if err := json.Unmarshal(body, &got); err != nil {
						fatal(err)
					}
					want, err := oracle.QueryStats(p[0], p[1])
					if err != nil {
						fatal(err)
					}
					wantUnreachable := want.Dist == graph.InfDist
					wantDist := want.Dist
					if wantUnreachable {
						wantDist = 0
					}
					if got.Dist != wantDist || got.Unreachable != wantUnreachable ||
						got.Levels != want.Levels || got.Fallback != want.Fallback {
						mu.Lock()
						mismatch++
						if len(firstErrs) < 3 {
							firstErrs = append(firstErrs,
								fmt.Sprintf("query %v: got %+v, want %+v", p, got, want))
						}
						mu.Unlock()
					}
				}
			}
		}(w, perWorker)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(samples, func(i, j int) bool { return samples[i].lat < samples[j].lat })
	quant := func(p float64) time.Duration {
		if len(samples) == 0 {
			return 0
		}
		i := int(p * float64(len(samples)))
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i].lat
	}
	total := len(samples) + errCount
	infof("\n%d queries (%s mix, %d workers) in %s: %.0f q/s, %d errors\n",
		total, *mixName, *concurrency, elapsed.Round(time.Millisecond),
		float64(len(samples))/elapsed.Seconds(), errCount)
	infof("client latency: p50=%s p95=%s p99=%s max=%s\n",
		quant(0.50).Round(time.Microsecond), quant(0.95).Round(time.Microsecond),
		quant(0.99).Round(time.Microsecond), quant(1).Round(time.Microsecond))
	for _, e := range firstErrs {
		infof("  ! %s\n", e)
	}

	// Slowest traced request: where did the time go, server-side?
	var slowestTrace *obs.TraceData
	if *traceSample > 0 {
		if tracedCount == 0 {
			infof("trace: no traced responses (is the daemon running this build?)\n")
		} else {
			slowestTrace = &slowest
			var spanSum float64
			for _, sp := range slowest.Spans {
				spanSum += sp.DurUS
			}
			clientUS := float64(slowestLat) / float64(time.Microsecond)
			infof("trace: %d traced; slowest %s: client=%s server=%s spans[%s]\n",
				tracedCount, slowest.ID,
				slowestLat.Round(time.Microsecond),
				time.Duration(slowest.TotalUS*float64(time.Microsecond)).Round(time.Microsecond),
				slowest.SpanSummary())
			infof("trace: spans cover %.1f%% of server time, %.1f%% of client latency",
				100*spanSum/slowest.TotalUS, 100*spanSum/clientUS)
			if len(slowest.Attrs) > 0 {
				keys := make([]string, 0, len(slowest.Attrs))
				for k := range slowest.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				infof("; ")
				for i, k := range keys {
					if i > 0 {
						infof(" ")
					}
					infof("%s=%v", k, slowest.Attrs[k])
				}
			}
			infof("\n")
		}
	}

	// Server-side counters: did the window actually coalesce, did the
	// cache absorb the hot set?
	var serverStats any
	code, body, err := doJSON(client, "GET", *addr+"/stats", nil)
	if err == nil && code == http.StatusOK {
		var stats struct {
			Graphs map[string]struct {
				Requests      int64   `json:"requests"`
				CacheHits     int64   `json:"cache_hits"`
				Rejects       int64   `json:"rejects"`
				Batches       int64   `json:"batches"`
				MeanBatchSize float64 `json:"mean_batch_size"`
				Latency       struct {
					MeanUS float64 `json:"mean_us"`
					P99US  int64   `json:"p99_us"`
				} `json:"latency"`
			} `json:"graphs"`
		}
		if json.Unmarshal(body, &stats) == nil {
			if g, ok := stats.Graphs[id]; ok {
				infof("server: %d requests, %d batches (mean size %.2f), %d cache hits, %d rejects, service p99=%dµs\n",
					g.Requests, g.Batches, g.MeanBatchSize, g.CacheHits, g.Rejects, g.Latency.P99US)
				serverStats = g
			}
		}
	}

	// -report-workload: cross-check the server's analytics against the
	// load this process just generated. Runs after the summary is
	// assembled so the snapshot can ride along in -json output; the
	// verdict (and exit) happens below, after the JSON is emitted.
	var afterWL *obs.WorkloadSnapshot
	var workloadErr error
	if *reportWorkload {
		snap, ok, err := fetchWorkload(client, *addr, id)
		if err == nil && !ok {
			err = fmt.Errorf("graph %s missing from /debug/workload", id)
		}
		if err != nil {
			fatal(fmt.Errorf("report-workload: %w", err))
		}
		afterWL = &snap
		workloadErr = checkWorkload(beforeWL, snap, pairSent, offered)
		if workloadErr == nil {
			infof("workload: server analytics match the generated load (%d offered, %d distinct pairs, sketch total %d)\n",
				offered, len(pairSent), snap.TotalPairs)
		}
	}

	// -report-quality: let the daemon's background auditor drain the
	// samples it took from this run's traffic, then assert no served
	// answer escaped its stretch envelope. The verdict (and exit)
	// happens below, after the JSON is emitted.
	var quality *qualityBlock
	var qualityErr error
	if *reportQuality {
		afterQ, err := awaitQuality(client, *addr, id, beforeQ)
		if err != nil {
			fatal(fmt.Errorf("report-quality: %w", err))
		}
		maxRatio := 0.0
		for _, reg := range afterQ.Regimes {
			if reg.MaxRatio > maxRatio {
				maxRatio = reg.MaxRatio
			}
		}
		quality = &qualityBlock{
			SamplesAudited: afterQ.Audited - beforeQ.Audited,
			Violations:     afterQ.Violations - beforeQ.Violations,
			MaxRatio:       maxRatio,
		}
		switch {
		case quality.Violations > 0:
			qualityErr = fmt.Errorf("auditor flagged %d envelope violation(s) during this run (max observed stretch %.4f, envelope [%.4f, %.4f]); see GET /debug/quality?graph=%s for the evidence ring",
				quality.Violations, maxRatio, afterQ.Envelope.Lo, afterQ.Envelope.Hi, id)
		case quality.SamplesAudited == 0:
			infof("quality: no samples audited this run (sampling stride above the request count and no traced requests?) — nothing to assert\n")
		default:
			infof("quality: %d answers shadow re-checked, 0 violations, max stretch %.4f within envelope [%.4f, %.4f]\n",
				quality.SamplesAudited, maxRatio, afterQ.Envelope.Lo, afterQ.Envelope.Hi)
		}
	}

	if *jsonOut {
		sum := jsonSummary{
			Graph: id, N: info.N, M: info.M, Mix: *mixName,
			Concurrency: *concurrency, Requests: total, Errors: errCount,
			ElapsedMS: float64(elapsed.Microseconds()) / 1000,
			QPS:       float64(len(samples)) / elapsed.Seconds(),
			P50US:     quant(0.50).Microseconds(), P95US: quant(0.95).Microseconds(),
			P99US: quant(0.99).Microseconds(), MaxUS: quant(1).Microseconds(),
			Verified: oracle != nil && mismatch == 0, Mismatches: mismatch,
			Mutations: mutations, Server: serverStats,
			SlowestTrace: slowestTrace,
			Workload:     afterWL,
			Quality:      quality,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fatal(err)
		}
	}

	if oracle != nil {
		if mismatch > 0 {
			fatal(fmt.Errorf("%d answers differed from the serial oracle", mismatch))
		}
		infof("verify: all %d answers bit-identical to serial DistanceOracle.Query\n", len(samples))
	}
	if workloadErr != nil {
		if errCount > 0 {
			// Transport errors mean the client cannot know which requests
			// reached the executor; the delta assertions are ambiguous,
			// so report without failing on their account.
			infof("workload: check inconclusive (%d transport errors): %v\n", errCount, workloadErr)
		} else {
			fatal(fmt.Errorf("report-workload: %w", workloadErr))
		}
	}
	if qualityErr != nil {
		// A violation is a server correctness alarm, never a
		// load-generation artifact: the auditor compared a served answer
		// against its own exact recomputation, so transport errors on
		// this side cannot excuse it.
		fatal(fmt.Errorf("report-quality: %w", qualityErr))
	}
	if errCount > 0 {
		os.Exit(1)
	}
}

// fetchQuality fetches one graph's /debug/quality audit state; ok is
// false when the server has nothing for the graph.
func fetchQuality(client *http.Client, addr, id string) (obs.AuditGraphSnapshot, bool, error) {
	code, body, err := doJSON(client, "GET", addr+"/debug/quality?graph="+id, nil)
	if err != nil {
		return obs.AuditGraphSnapshot{}, false, err
	}
	if code == http.StatusNotFound {
		return obs.AuditGraphSnapshot{}, false, nil
	}
	if code != http.StatusOK {
		return obs.AuditGraphSnapshot{}, false, fmt.Errorf("GET /debug/quality: %d: %s", code, body)
	}
	var resp struct {
		Graphs []obs.AuditGraphSnapshot `json:"graphs"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return obs.AuditGraphSnapshot{}, false, err
	}
	for _, g := range resp.Graphs {
		if g.Graph == id {
			return g, true, nil
		}
	}
	return obs.AuditGraphSnapshot{}, false, nil
}

// awaitQuality polls /debug/quality until the auditor has drained
// every sample it accepted (each one audited, dropped, or skipped) or
// a deadline passes — audits run on background workers, so the
// counters lag the traffic that fed them.
func awaitQuality(client *http.Client, addr, id string, before obs.AuditGraphSnapshot) (obs.AuditGraphSnapshot, error) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		snap, ok, err := fetchQuality(client, addr, id)
		if err != nil {
			return snap, err
		}
		if !ok {
			return snap, fmt.Errorf("graph %s missing from /debug/quality", id)
		}
		settled := snap.Audited+snap.Dropped+snap.BudgetSkips+snap.StaleSkips+snap.Errors
		if settled >= snap.Sampled || time.Now().After(deadline) {
			return snap, nil
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// fetchWorkload fetches one graph's /debug/workload analytics with the
// full sketch (k=0); ok is false when the server has nothing for the
// graph yet.
func fetchWorkload(client *http.Client, addr, id string) (obs.WorkloadSnapshot, bool, error) {
	code, body, err := doJSON(client, "GET", addr+"/debug/workload?k=0&graph="+id, nil)
	if err != nil {
		return obs.WorkloadSnapshot{}, false, err
	}
	if code == http.StatusNotFound {
		return obs.WorkloadSnapshot{}, false, nil
	}
	if code != http.StatusOK {
		return obs.WorkloadSnapshot{}, false, fmt.Errorf("GET /debug/workload: %d: %s", code, body)
	}
	var resp struct {
		Graphs map[string]obs.WorkloadSnapshot `json:"graphs"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return obs.WorkloadSnapshot{}, false, err
	}
	snap, ok := resp.Graphs[id]
	return snap, ok, nil
}

// checkWorkload asserts the server's analytics deltas across the read
// phase match the load this run generated:
//
//   - the "query" op counter advanced by exactly the offered requests
//     (the executor counts demand at entry — cache hits, rejects, and
//     failures included);
//   - the heavy-hitter sketch's observation total advanced by the
//     same amount;
//   - every sketch entry the server reports as exact (err == 0) on a
//     previously idle graph carries precisely the count this run sent
//     for that pair (the space-saving sketch's exactness guarantee);
//   - every pair this run sent more often than the sketch's minimum
//     retained count is present in the sketch (its admission
//     guarantee: an evicted key's true count cannot exceed the
//     minimum).
//
// On a graph that already carried traffic (before.TotalPairs > 0) the
// per-pair checks weaken to lower bounds, since the baseline snapshot
// only exposes the sketch's top entries, not every historical pair.
func checkWorkload(before, after obs.WorkloadSnapshot, sent map[[2]graph.V]int64, offered int64) error {
	opCount := func(s obs.WorkloadSnapshot, op string) int64 {
		for _, o := range s.Ops {
			if o.Op == op {
				return o.Count
			}
		}
		return 0
	}
	var problems []string
	if d := opCount(after, obs.OpQuery) - opCount(before, obs.OpQuery); d != offered {
		problems = append(problems,
			fmt.Sprintf("op mix: server %q counter advanced by %d, client offered %d", obs.OpQuery, d, offered))
	}
	if d := int64(after.TotalPairs) - int64(before.TotalPairs); d != offered {
		problems = append(problems,
			fmt.Sprintf("sketch: observation total advanced by %d, client offered %d", d, offered))
	}

	fresh := before.TotalPairs == 0
	var minCount uint64
	exact, inexact := 0, 0
	for i, tp := range after.TopPairs {
		if i == 0 || tp.Count < minCount {
			minCount = tp.Count
		}
		ours := sent[[2]graph.V{graph.V(tp.S), graph.V(tp.T)}]
		if tp.Err != 0 {
			inexact++
			continue
		}
		exact++
		switch {
		case fresh && tp.Count != uint64(ours):
			problems = append(problems,
				fmt.Sprintf("pair (%d,%d): server exact count %d, client sent %d", tp.S, tp.T, tp.Count, ours))
		case !fresh && tp.Count < uint64(ours):
			problems = append(problems,
				fmt.Sprintf("pair (%d,%d): server cumulative count %d below the %d this run sent", tp.S, tp.T, tp.Count, ours))
		}
	}
	if fresh {
		// Admission check: a key absent from the sketch has a true count
		// no larger than the smallest retained count, so any hotter pair
		// we sent must have been kept.
		inSketch := make(map[[2]graph.V]bool, len(after.TopPairs))
		for _, tp := range after.TopPairs {
			inSketch[[2]graph.V{graph.V(tp.S), graph.V(tp.T)}] = true
		}
		for p, n := range sent {
			if uint64(n) > minCount && !inSketch[p] {
				problems = append(problems,
					fmt.Sprintf("hot pair (%d,%d): sent %d times (> sketch minimum %d) but missing from the sketch", p[0], p[1], n, minCount))
			}
		}
	}
	infof("workload: sketch holds %d pairs (%d exact, %d approximate), op %q total %d\n",
		len(after.TopPairs), exact, inexact, obs.OpQuery, opCount(after, obs.OpQuery))
	if len(problems) > 0 {
		if len(problems) > 5 {
			problems = append(problems[:5], fmt.Sprintf("... and %d more", len(problems)-5))
		}
		return fmt.Errorf("server analytics disagree with the generated load:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

type mutationConfig struct {
	seed      uint64
	batches   int
	batchSize int
	mix       string
	maxW      int64
}

// runMutations drives the mutation phase: deterministic batches from
// workload.Mutator through POST /graphs/{id}/edges, asserting the
// generation advances by exactly one per mutation. With a replica
// (-verify), every batch is replayed locally, pre-rebuild answers are
// spot-checked against the replica's overlay path, and finally both
// sides force a rebuild so the read phase verifies against one
// compacted generation. The returned bool reports whether bit-exact
// verification remains sound: if the server's policy triggered a
// rebuild MID-phase, its final oracle was materialized through an
// intermediate swap — graph materialization is path-dependent (edge
// order differs across swap points), so the replica's single-shot
// materialization is not CSR-identical and the read phase must fall
// back to unverified measurement.
func runMutations(client *http.Client, addr, id string, g *graph.Graph, cfg mutationConfig, replica *spanhop.DynamicOracle) (verifiable bool, total int, err error) {
	mut, err := workload.NewMutator(g, cfg.mix, cfg.maxW, cfg.seed^0xD15EA5E)
	if err != nil {
		return false, 0, err
	}
	dynOf := func() (*server.DynamicInfo, error) {
		code, body, err := doJSON(client, "GET", addr+"/graphs/"+id, nil)
		if err != nil {
			return nil, err
		}
		if code != http.StatusOK {
			return nil, fmt.Errorf("GET /graphs/%s: %d: %s", id, code, body)
		}
		var info server.Info
		if err := json.Unmarshal(body, &info); err != nil {
			return nil, err
		}
		if info.Dynamic == nil {
			return nil, fmt.Errorf("graph %s reports no dynamic state", id)
		}
		return info.Dynamic, nil
	}
	dyn, err := dynOf()
	if err != nil {
		return false, total, err
	}
	lastGen := dyn.Generation

	url := fmt.Sprintf("%s/graphs/%s/edges", addr, id)
	start := time.Now()
	for b := 0; b < cfg.batches; b++ {
		ups := mut.Batch(cfg.batchSize)
		if len(ups) == 0 {
			infof("mutate: %s mix ran dry after %d batches\n", cfg.mix, b)
			break
		}
		wire := make([]map[string]any, len(ups))
		for i, u := range ups {
			wire[i] = map[string]any{"op": u.Op.String(), "u": u.U, "v": u.V}
			if u.Op != spanhop.UpdateDelete {
				wire[i]["w"] = u.W
			}
		}
		code, body, err := doJSON(client, "POST", url, map[string]any{"updates": wire})
		if err != nil {
			return false, total, err
		}
		if code != http.StatusOK {
			return false, total, fmt.Errorf("POST /graphs/%s/edges: %d: %s", id, code, body)
		}
		var resp struct {
			Applied    int    `json:"applied"`
			Generation uint64 `json:"generation"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			return false, total, err
		}
		if resp.Applied != len(ups) || resp.Generation != lastGen+uint64(len(ups)) {
			return false, total, fmt.Errorf("batch %d: applied %d at generation %d, want %d at %d",
				b, resp.Applied, resp.Generation, len(ups), lastGen+uint64(len(ups)))
		}
		lastGen = resp.Generation
		total += len(ups)
		if replica != nil {
			if _, err := replica.ApplyUpdates(ups); err != nil {
				return false, total, fmt.Errorf("local replay: %w", err)
			}
		}
	}
	infof("mutate: %d mutations in %d batches (%s mix) in %s; server generation %d\n",
		total, cfg.batches, cfg.mix, time.Since(start).Round(time.Millisecond), lastGen)
	if replica == nil {
		return true, total, nil
	}

	// Overlay-phase spot check: only sound while the server has not
	// folded any of the journal into a rebuilt oracle (no mutations
	// will land from here on, so rebuild state is stable once idle).
	dyn, err = dynOf()
	if err != nil {
		return false, total, err
	}
	if dyn.Rebuilds > 0 || dyn.RebuildRunning {
		// The server's policy rebuilt mid-phase: its oracle was
		// materialized through an intermediate swap, which the
		// single-shot replica cannot reproduce CSR-identically.
		infof("mutate: server auto-rebuilt mid-phase; bit-exact verification disabled for this run (raise the daemon's rebuild thresholds or lower -mutate to restore it)\n")
		return false, total, nil
	}
	mix := workload.UniformMix(g.NumVertices(), cfg.seed^0x0fface)
	for i := 0; i < 25; i++ {
		p := mix.Next()
		if err := verifyOne(client, addr, id, replica, p); err != nil {
			return false, total, fmt.Errorf("overlay verify: %w", err)
		}
	}
	infof("mutate: 25 overlay answers bit-identical to the local replica\n")

	// Force both sides to the same compacted generation for the read
	// phase: the server folds its journal synchronously, the replica
	// follows, and afterwards both answer from a from-scratch oracle
	// on the identical mutated graph and seed.
	code, body, err := doJSON(client, "POST", addr+"/graphs/"+id+"/rebuild", nil)
	if err != nil {
		return false, total, err
	}
	if code != http.StatusOK {
		return false, total, fmt.Errorf("POST /graphs/%s/rebuild: %d: %s", id, code, body)
	}
	if err := replica.ForceRebuild(context.Background()); err != nil {
		return false, total, err
	}
	infof("mutate: server and replica rebuilt at the same generation\n")
	return true, total, nil
}

// verifyOne compares one server answer against the local reference.
func verifyOne(client *http.Client, addr, id string, oracle interface {
	QueryStats(s, t graph.V) (spanhop.QueryStats, error)
}, p [2]graph.V) error {
	code, body, err := doJSON(client, "POST", fmt.Sprintf("%s/graphs/%s/query", addr, id),
		map[string]any{"s": p[0], "t": p[1]})
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("query %v: %d: %s", p, code, body)
	}
	var got struct {
		Dist        graph.Dist `json:"dist"`
		Unreachable bool       `json:"unreachable"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		return err
	}
	want, err := oracle.QueryStats(p[0], p[1])
	if err != nil {
		return err
	}
	wantUnreachable := want.Dist == graph.InfDist
	wantDist := want.Dist
	if wantUnreachable {
		wantDist = 0
	}
	if got.Dist != wantDist || got.Unreachable != wantUnreachable {
		return fmt.Errorf("query %v: server %d/%v, local %d/%v", p, got.Dist, got.Unreachable, wantDist, wantUnreachable)
	}
	return nil
}

// doJSON sends one JSON request and returns (status, body, error).
func doJSON(client *http.Client, method, url string, payload any) (int, []byte, error) {
	code, body, _, err := doJSONHdr(client, method, url, payload, nil)
	return code, body, err
}

// doJSONHdr is doJSON with extra request headers and the response
// headers returned — the -trace-sample path needs both sides of the
// X-Spanhop-Trace exchange.
func doJSONHdr(client *http.Client, method, url string, payload any, hdr map[string]string) (int, []byte, http.Header, error) {
	var buf bytes.Buffer
	if payload != nil {
		if err := json.NewEncoder(&buf).Encode(payload); err != nil {
			return 0, nil, nil, err
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, resp.Header, err
}

// waitReady polls the graph until its build finishes.
func waitReady(client *http.Client, addr, id string, timeout time.Duration) server.Info {
	deadline := time.Now().Add(timeout)
	for {
		code, body, err := doJSON(client, "GET", addr+"/graphs/"+id, nil)
		if err != nil {
			fatal(err)
		}
		if code != http.StatusOK {
			fatal(fmt.Errorf("GET /graphs/%s: %d: %s", id, code, body))
		}
		var info server.Info
		if err := json.Unmarshal(body, &info); err != nil {
			fatal(err)
		}
		switch info.State {
		case server.StateReady:
			return info
		case server.StateFailed:
			fatal(fmt.Errorf("build of %s failed: %s", id, info.Error))
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("graph %s not ready after %s", id, timeout))
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}

// progress receives all human-facing output; -json redirects it to
// stderr so stdout stays machine-readable.
var progress io.Writer = os.Stdout

func infof(format string, args ...any) {
	fmt.Fprintf(progress, format, args...)
}

// jsonSummary is the -json stdout shape: client-side throughput and
// latency plus the server's own counters, one object per run.
type jsonSummary struct {
	Graph       string  `json:"graph"`
	N           int32   `json:"n"`
	M           int64   `json:"m"`
	Mix         string  `json:"mix"`
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	QPS         float64 `json:"qps"`
	P50US       int64   `json:"p50_us"`
	P95US       int64   `json:"p95_us"`
	P99US       int64   `json:"p99_us"`
	MaxUS       int64   `json:"max_us"`
	Verified    bool    `json:"verified"`
	Mismatches  int     `json:"mismatches"`
	Mutations   int     `json:"mutations,omitempty"`
	Server      any     `json:"server,omitempty"`
	// SlowestTrace is the server-side span breakdown of the slowest
	// traced request (with -trace-sample).
	SlowestTrace *obs.TraceData `json:"slowest_trace,omitempty"`
	// Workload is the server's post-run /debug/workload snapshot for
	// the queried graph (with -report-workload).
	Workload *obs.WorkloadSnapshot `json:"workload,omitempty"`
	// Quality is the answer auditor's verdict on this run's sampled
	// traffic (with -report-quality).
	Quality *qualityBlock `json:"quality,omitempty"`
}

// qualityBlock is the -json "quality" member: the run's delta of the
// server's answer-audit counters plus the cumulative max stretch
// high-water mark.
type qualityBlock struct {
	SamplesAudited int64   `json:"samples_audited"`
	Violations     int64   `json:"violations"`
	MaxRatio       float64 `json:"max_ratio"`
}
