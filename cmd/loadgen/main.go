// Command loadgen replays synthetic query mixes against a running
// spanhopd and reports client-side throughput/latency plus the
// server's own coalescing and cache counters — the repo's end-to-end
// serving benchmark.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 \
//	    [-graph id | -gen "er:n=4096,d=8,w=uniform"] \
//	    [-mix uniform|hotspot|repeat] [-concurrency 16] [-requests 2000] \
//	    [-eps 0.25] [-seed 1] [-verify] [-workers N]
//
// With -gen, loadgen registers the graph itself (id "loadgen") and
// waits for the build. With -verify (requires -gen), it rebuilds the
// same oracle locally — generation and preprocessing are
// deterministic in (gen, seed, eps) — and asserts every server answer
// is bit-identical to serial DistanceOracle.Query.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	spanhop "repro"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "spanhopd base URL")
	graphID := flag.String("graph", "", "existing graph id to query")
	gen := flag.String("gen", "", "generator spec to register and query (id \"loadgen\")")
	mixName := flag.String("mix", "uniform", "query mix: uniform, hotspot, repeat")
	concurrency := flag.Int("concurrency", 16, "concurrent client workers")
	requests := flag.Int("requests", 2000, "total queries to send")
	eps := flag.Float64("eps", 0.25, "oracle accuracy (with -gen)")
	seed := flag.Uint64("seed", 1, "seed (with -gen; also seeds the mixes)")
	verify := flag.Bool("verify", false, "rebuild the oracle locally and verify every answer (needs -gen)")
	workers := flag.Int("workers", 0, "worker cap for the local -verify rebuild; must mirror the daemon's -workers so both sides build the same oracle (0 = the sequential reference build, matching a daemon without -workers/-parallel)")
	timeout := flag.Duration("timeout", 120*time.Second, "build-wait timeout")
	flag.Parse()

	if (*graphID == "") == (*gen == "") {
		fatal(fmt.Errorf("give exactly one of -graph or -gen"))
	}
	if *verify && *gen == "" {
		fatal(fmt.Errorf("-verify needs -gen (the spec to rebuild locally)"))
	}

	client := &http.Client{Timeout: 30 * time.Second}
	id := *graphID
	if *gen != "" {
		id = "loadgen"
		code, body, err := doJSON(client, "POST", *addr+"/graphs",
			server.GraphSpec{Name: id, Gen: *gen, Eps: *eps, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		// 409 duplicate = already registered by a previous run against
		// the same daemon; querying it is fine because the build is
		// deterministic in (gen, eps, seed).
		if code != http.StatusAccepted && code != http.StatusConflict {
			fatal(fmt.Errorf("POST /graphs: %d: %s", code, body))
		}
	}

	info := waitReady(client, *addr, id, *timeout)
	if *gen != "" {
		// If "loadgen" already existed (409 above), it may have been
		// registered by an earlier run with different parameters;
		// querying — and especially -verify — would then target the
		// wrong oracle.
		if info.Spec.Gen != *gen || info.Spec.Eps != *eps || info.Spec.Seed != *seed {
			fatal(fmt.Errorf("graph %q on the daemon was built from (gen=%q eps=%g seed=%d), not the requested (gen=%q eps=%g seed=%d); restart the daemon or change -gen",
				id, info.Spec.Gen, info.Spec.Eps, info.Spec.Seed, *gen, *eps, *seed))
		}
	}
	fmt.Printf("graph %s: n=%d m=%d weighted=%v hopset=%d instances=%d (built in %dms)\n",
		id, info.N, info.M, info.Weighted, info.HopsetEdges, info.Instances, info.BuildMS)

	var oracle *spanhop.DistanceOracle
	if *verify {
		spec, err := workload.ParseSpec(*gen, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("verify: rebuilding oracle locally (eps=%g seed=%d workers=%d)...\n", *eps, *seed, *workers)
		var opt spanhop.OracleOptions
		if *workers > 0 {
			opt.Exec = spanhop.ParallelExec(*workers)
		}
		oracle = spanhop.NewDistanceOracleOpts(spec.Gen(), *eps, *seed, opt)
	}

	type sample struct {
		lat time.Duration
	}
	var (
		mu        sync.Mutex
		samples   []sample
		errCount  int
		mismatch  int
		firstErrs []string
	)
	if *concurrency < 1 {
		*concurrency = 1
	}
	if *concurrency > *requests {
		*concurrency = *requests
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		// Distribute -requests exactly: the first requests%concurrency
		// workers take one extra.
		perWorker := *requests / *concurrency
		if w < *requests%*concurrency {
			perWorker++
		}
		wg.Add(1)
		go func(w, perWorker int) {
			defer wg.Done()
			mix, err := workload.ParseMix(*mixName, info.N, *seed+uint64(w)*0x9e3779b9)
			if err != nil {
				fatal(err)
			}
			url := fmt.Sprintf("%s/graphs/%s/query", *addr, id)
			for i := 0; i < perWorker; i++ {
				p := mix.Next()
				q0 := time.Now()
				code, body, err := doJSON(client, "POST", url,
					map[string]any{"s": p[0], "t": p[1]})
				lat := time.Since(q0)
				mu.Lock()
				if err != nil || code != http.StatusOK {
					errCount++
					if len(firstErrs) < 3 {
						firstErrs = append(firstErrs,
							fmt.Sprintf("query %v: code=%d err=%v body=%s", p, code, err, body))
					}
					mu.Unlock()
					continue
				}
				samples = append(samples, sample{lat: lat})
				mu.Unlock()
				if oracle != nil {
					var got struct {
						Dist        graph.Dist `json:"dist"`
						Unreachable bool       `json:"unreachable"`
						Levels      int64      `json:"levels"`
						Fallback    bool       `json:"fallback"`
					}
					if err := json.Unmarshal(body, &got); err != nil {
						fatal(err)
					}
					want, err := oracle.QueryStats(p[0], p[1])
					if err != nil {
						fatal(err)
					}
					wantUnreachable := want.Dist == graph.InfDist
					wantDist := want.Dist
					if wantUnreachable {
						wantDist = 0
					}
					if got.Dist != wantDist || got.Unreachable != wantUnreachable ||
						got.Levels != want.Levels || got.Fallback != want.Fallback {
						mu.Lock()
						mismatch++
						if len(firstErrs) < 3 {
							firstErrs = append(firstErrs,
								fmt.Sprintf("query %v: got %+v, want %+v", p, got, want))
						}
						mu.Unlock()
					}
				}
			}
		}(w, perWorker)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(samples, func(i, j int) bool { return samples[i].lat < samples[j].lat })
	quant := func(p float64) time.Duration {
		if len(samples) == 0 {
			return 0
		}
		i := int(p * float64(len(samples)))
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i].lat
	}
	total := len(samples) + errCount
	fmt.Printf("\n%d queries (%s mix, %d workers) in %s: %.0f q/s, %d errors\n",
		total, *mixName, *concurrency, elapsed.Round(time.Millisecond),
		float64(len(samples))/elapsed.Seconds(), errCount)
	fmt.Printf("client latency: p50=%s p95=%s p99=%s max=%s\n",
		quant(0.50).Round(time.Microsecond), quant(0.95).Round(time.Microsecond),
		quant(0.99).Round(time.Microsecond), quant(1).Round(time.Microsecond))
	for _, e := range firstErrs {
		fmt.Printf("  ! %s\n", e)
	}

	// Server-side counters: did the window actually coalesce, did the
	// cache absorb the hot set?
	code, body, err := doJSON(client, "GET", *addr+"/stats", nil)
	if err == nil && code == http.StatusOK {
		var stats struct {
			Graphs map[string]struct {
				Requests      int64   `json:"requests"`
				CacheHits     int64   `json:"cache_hits"`
				Rejects       int64   `json:"rejects"`
				Batches       int64   `json:"batches"`
				MeanBatchSize float64 `json:"mean_batch_size"`
				Latency       struct {
					MeanUS float64 `json:"mean_us"`
					P99US  int64   `json:"p99_us"`
				} `json:"latency"`
			} `json:"graphs"`
		}
		if json.Unmarshal(body, &stats) == nil {
			if g, ok := stats.Graphs[id]; ok {
				fmt.Printf("server: %d requests, %d batches (mean size %.2f), %d cache hits, %d rejects, service p99=%dµs\n",
					g.Requests, g.Batches, g.MeanBatchSize, g.CacheHits, g.Rejects, g.Latency.P99US)
			}
		}
	}

	if oracle != nil {
		if mismatch > 0 {
			fatal(fmt.Errorf("%d answers differed from the serial oracle", mismatch))
		}
		fmt.Printf("verify: all %d answers bit-identical to serial DistanceOracle.Query\n", len(samples))
	}
	if errCount > 0 {
		os.Exit(1)
	}
}

// doJSON sends one JSON request and returns (status, body, error).
func doJSON(client *http.Client, method, url string, payload any) (int, []byte, error) {
	var buf bytes.Buffer
	if payload != nil {
		if err := json.NewEncoder(&buf).Encode(payload); err != nil {
			return 0, nil, err
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

// waitReady polls the graph until its build finishes.
func waitReady(client *http.Client, addr, id string, timeout time.Duration) server.Info {
	deadline := time.Now().Add(timeout)
	for {
		code, body, err := doJSON(client, "GET", addr+"/graphs/"+id, nil)
		if err != nil {
			fatal(err)
		}
		if code != http.StatusOK {
			fatal(fmt.Errorf("GET /graphs/%s: %d: %s", id, code, body))
		}
		var info server.Info
		if err := json.Unmarshal(body, &info); err != nil {
			fatal(err)
		}
		switch info.State {
		case server.StateReady:
			return info
		case server.StateFailed:
			fatal(fmt.Errorf("build of %s failed: %s", id, info.Error))
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("graph %s not ready after %s", id, timeout))
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
