// Command spanner builds a spanner of a graph file and reports size,
// cost, and measured stretch; optionally writes the spanner out.
//
// Usage:
//
//	spanner -in graph.txt [-k 3] [-algo est|baswana-sen|greedy] [-seed N] [-out spanner.txt] [-samples 200] [-workers N] [-parallel]
//	spanner -in graph.txt -save sp.snap        # build once, persist
//	spanner -in graph.txt -load sp.snap        # reuse across runs
//
// Graph files use the text or binary format of internal/graph (see
// cmd/gengraph to create one; the format is sniffed). -save persists
// the spanner's edge-id set in a checksummed snapshot pinned to the
// input graph's fingerprint; -load restores it (the same -in graph is
// required) and skips the build, so expensive constructions are
// reusable across runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/snapshot"
	"repro/internal/spanner"
)

func main() {
	in := flag.String("in", "", "input graph file (text or binary; required)")
	out := flag.String("out", "", "optional output file for the spanner subgraph")
	k := flag.Int("k", 3, "stretch parameter k")
	algo := flag.String("algo", "est", "algorithm: est (ours), baswana-sen, greedy")
	seed := flag.Uint64("seed", 1, "random seed")
	samples := flag.Int("samples", 200, "edges sampled for stretch measurement (0 = skip)")
	parallel := flag.Bool("parallel", false, "run the clustering race and boundary sweep on goroutines (est only; deprecated: use -workers)")
	workers := flag.Int("workers", 0, "worker cap for the est build: 1 = sequential, N > 1 = multicore capped at N, 0 = defer to -parallel")
	save := flag.String("save", "", "write the built spanner to this snapshot file")
	load := flag.String("load", "", "restore a spanner snapshot instead of building (requires the matching -in graph)")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "spanner: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	g, err := graph.ReadAuto(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	cost := par.NewCost()
	var res *spanner.Result
	switch {
	case *load != "":
		lf, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		sk, sseed, ids, _, err := snapshot.ReadSpanner(lf, g)
		lf.Close()
		if err != nil {
			fatal(err)
		}
		// Adopt the snapshot's provenance so a re-save (-load -save)
		// records the parameters the edge set was actually built with.
		*algo = fmt.Sprintf("restored from %s", *load)
		*k = sk
		*seed = sseed
		res = &spanner.Result{EdgeIDs: ids}
	case *algo == "est":
		opts := spanner.Options{Cost: cost, Parallel: *parallel}
		if *workers > 0 {
			opts.Exec = exec.Parallel(*workers)
		}
		if g.Weighted() {
			res = spanner.WeightedOpts(g, *k, *seed, opts)
		} else {
			res = spanner.UnweightedOpts(g, *k, *seed, opts)
		}
	case *algo == "baswana-sen":
		res = spanner.BaswanaSen(g, *k, *seed, cost)
	case *algo == "greedy":
		res = spanner.Greedy(g, *k, cost)
	default:
		fmt.Fprintf(os.Stderr, "spanner: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	if *parallel && *load == "" && *algo != "est" {
		fmt.Fprintln(os.Stderr, "spanner: note: -parallel only affects -algo est; baselines ran sequentially")
	}

	fmt.Printf("graph: n=%d m=%d weighted=%v ratio=%.3g\n",
		g.NumVertices(), g.NumEdges(), g.Weighted(), g.WeightRatio())
	fmt.Printf("spanner (%s, k=%d): %d edges (%.1f%% of input)\n",
		*algo, *k, res.Size(), 100*float64(res.Size())/float64(g.NumEdges()))
	fmt.Printf("cost: work=%d depth=%d\n", cost.Work(), cost.Depth())
	if *samples > 0 {
		st := eval.SpannerStretch(g, res.EdgeIDs, *samples, *seed+7)
		fmt.Printf("stretch over %d sampled edges: max=%.3f mean=%.3f\n",
			st.Samples, st.Max, st.Mean)
	}
	if *save != "" {
		sf, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		err = snapshot.WriteSpanner(sf, g, *k, *seed, res.EdgeIDs, nil)
		if cerr := sf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("saved spanner snapshot to %s\n", *save)
	}
	if *out != "" {
		h := res.Graph(g)
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := graph.WriteText(of, h); err != nil {
			fatal(err)
		}
		if err := of.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote spanner to %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spanner:", err)
	os.Exit(1)
}
