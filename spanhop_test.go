package spanhop

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	g := RandomGraph(2000, 8000, 42)
	sp := UnweightedSpanner(g, 3, 1)
	if sp.Size() == 0 || int64(sp.Size()) >= g.NumEdges() {
		t.Fatalf("spanner size %d of %d edges", sp.Size(), g.NumEdges())
	}
	hs := BuildHopset(g, DefaultHopsetParams(2))
	if hs.Size() == 0 {
		t.Fatal("empty hopset")
	}
	res := ShortestPaths(g, 0)
	if !res.Reached(1999) {
		t.Fatal("connected graph unreachable")
	}
}

func TestFacadeCostVariants(t *testing.T) {
	g := RandomGraph(500, 2000, 7)
	c1 := NewCost()
	ESTClusterWithCost(g, 0.3, 1, c1)
	if c1.Work() == 0 {
		t.Fatal("clustering recorded no work")
	}
	c2 := NewCost()
	UnweightedSpannerWithCost(g, 3, 2, c2)
	if c2.Work() == 0 {
		t.Fatal("spanner recorded no work")
	}
	c3 := NewCost()
	BuildHopsetWithCost(g, DefaultHopsetParams(3), c3)
	if c3.Work() == 0 {
		t.Fatal("hopset recorded no work")
	}
	c4 := NewCost()
	wg := WithUniformWeights(g, 50, 4)
	BuildScaledHopsetWithCost(wg, DefaultScaledHopsetParams(5), c4)
	if c4.Work() == 0 {
		t.Fatal("scaled hopset recorded no work")
	}
}

func TestFacadeSearches(t *testing.T) {
	g := WithUniformWeights(GridGraph(10, 10), 5, 3)
	cost := NewCost()
	bfs := ParallelBFS(g, 0, cost)
	if bfs.Dist[99] != 18 {
		t.Fatalf("grid BFS corner dist %d, want 18", bfs.Dist[99])
	}
	dial := WeightedParallelBFS(g, 0, nil)
	dij := ShortestPaths(g, 0)
	for v := range dial.Dist {
		if dial.Dist[v] != dij.Dist[v] {
			t.Fatal("Dial != Dijkstra through facade")
		}
	}
	h := HopLimitedDistances(g, []Edge{{U: 0, V: 99, W: dij.Dist[99]}}, 0, 1)
	if h[99] != dij.Dist[99] {
		t.Fatalf("hop-limited with shortcut = %d", h[99])
	}
}

func TestFacadeBaselines(t *testing.T) {
	g := WithUniformWeights(RandomGraph(300, 1200, 9), 9, 10)
	if BaswanaSenSpanner(g, 2, 1).Size() == 0 {
		t.Fatal("empty Baswana-Sen spanner")
	}
	if GreedySpanner(g, 2).Size() == 0 {
		t.Fatal("empty greedy spanner")
	}
	if KS97Hopset(g, 2).Size() == 0 {
		t.Fatal("empty KS97 hopset")
	}
	if CohenStyleHopset(g, 2, 3).Size() == 0 {
		t.Fatal("empty Cohen-style hopset")
	}
	if LimitedHopset(WithUniformWeights(GridGraph(15, 15), 4, 1), 0.5, 0.4, 4).Size() == 0 {
		t.Fatal("empty limited hopset")
	}
}

func TestDistanceOracleDirect(t *testing.T) {
	// Single-scale weights: no decomposition needed.
	g := WithUniformWeights(RandomGraph(400, 1600, 11), 30, 12)
	o := NewDistanceOracle(g, 0.25, 13)
	if o.Decomposed() {
		t.Fatal("poly-bounded weights should not trigger decomposition")
	}
	if o.HopsetSize() == 0 {
		t.Fatal("oracle built no hopset")
	}
	r := rng.New(14)
	for i := 0; i < 15; i++ {
		s := r.Int31n(g.NumVertices())
		u := r.Int31n(g.NumVertices())
		exact := o.ExactDistance(s, u)
		got, err := o.Query(s, u)
		if err != nil {
			t.Fatal(err)
		}
		if got < exact {
			t.Fatalf("query(%d,%d) = %d below exact %d", s, u, got, exact)
		}
		if exact > 0 && float64(got) > 2.2*float64(exact) {
			t.Fatalf("query(%d,%d) = %d far above exact %d", s, u, got, exact)
		}
	}
}

func TestDistanceOracleDecomposed(t *testing.T) {
	// Weights spanning ~18 decades force the Appendix B decomposition
	// for eps = 0.25 at n = 150 ((n/eps)³ ≈ 2·10⁸).
	g := WithMultiScaleWeights(RandomGraph(150, 600, 15), 10, 18, 16)
	o := NewDistanceOracle(g, 0.25, 17)
	if !o.Decomposed() {
		t.Fatalf("ratio %.3g should trigger decomposition", g.WeightRatio())
	}
	r := rng.New(18)
	for i := 0; i < 15; i++ {
		s := r.Int31n(g.NumVertices())
		u := r.Int31n(g.NumVertices())
		exact := o.ExactDistance(s, u)
		got, err := o.Query(s, u)
		if err != nil {
			t.Fatal(err)
		}
		if exact == 0 {
			if got != 0 {
				t.Fatalf("query(%d,%d) = %d, want 0", s, u, got)
			}
			continue
		}
		ratio := float64(got) / float64(exact)
		// Decomposition may shave up to ε below; hopset may add above.
		if ratio < 1-0.25-1e-9 || ratio > 2.5 {
			t.Fatalf("query(%d,%d) = %d vs exact %d (ratio %.3f)", s, u, got, exact, ratio)
		}
	}
}

func TestDistanceOracleEdgeCases(t *testing.T) {
	g := NewGraph(4, []Edge{{U: 0, V: 1, W: 5}}, true)
	o := NewDistanceOracle(g, 0.5, 1)
	if d, err := o.Query(2, 2); err != nil || d != 0 {
		t.Fatalf("self query = %d, %v", d, err)
	}
	if d, err := o.Query(0, 3); err != nil || d != InfDist {
		t.Fatalf("disconnected query = %d, %v", d, err)
	}
	if _, err := o.Query(-1, 2); err == nil {
		t.Fatal("out-of-range query should error")
	}
	if _, err := o.Query(0, 4); err == nil {
		t.Fatal("out-of-range query should error")
	}
}

func TestDistanceOraclePanicsOnBadEps(t *testing.T) {
	g := NewGraph(2, []Edge{{U: 0, V: 1, W: 1}}, true)
	for _, eps := range []float64{0, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps %v did not panic", eps)
				}
			}()
			NewDistanceOracle(g, eps, 1)
		}()
	}
}

// Property: oracle answers are always sound (never below exact minus
// the decomposition allowance, finite iff connected).
func TestDistanceOracleSoundnessProperty(t *testing.T) {
	f := func(seedRaw uint32, multiScale bool) bool {
		seed := uint64(seedRaw)
		r := rng.New(seed ^ 0xabc)
		n := V(r.Intn(80) + 20)
		m := int64(n) - 1 + int64(r.Intn(150))
		if max := int64(n) * int64(n-1) / 2; m > max {
			m = max
		}
		g := RandomGraph(n, m, seed)
		if multiScale {
			g = WithMultiScaleWeights(g, 10, 16, seed^1)
		} else {
			g = WithUniformWeights(g, 20, seed^1)
		}
		eps := 0.25
		o := NewDistanceOracle(g, eps, seed^2)
		for i := 0; i < 5; i++ {
			s := r.Int31n(n)
			u := r.Int31n(n)
			exact := o.ExactDistance(s, u)
			got, err := o.Query(s, u)
			if err != nil {
				return false
			}
			if exact == InfDist {
				if got != InfDist {
					return false
				}
				continue
			}
			if float64(got) < (1-eps)*float64(exact)-1e-9 {
				return false
			}
			if exact > 0 && float64(got) > 3*float64(exact) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
